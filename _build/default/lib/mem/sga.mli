(** Scatter-gather arrays — the atomic data unit of Demikernel queues
    (§4.2–4.3).

    An [sga] is an ordered sequence of buffer segments. A scatter-gather
    array pushed into a queue always pops out as a single element; the
    segments give devices the granularity at which to compute. *)

type t

val empty : t
val of_buffers : Buffer.t list -> t
val of_string : string -> t
(** Single-segment sga over an unmanaged copy of the string. *)

val of_strings : string list -> t

val segments : t -> Buffer.t list
val segment_count : t -> int

val length : t -> int
(** Total byte length across segments. *)

val append : t -> Buffer.t -> t

val concat : t -> t -> t

val to_string : t -> string
(** Materialises the payload (copies — use only off the fast path). *)

val copy_into : t -> bytes -> int -> int
(** [copy_into t dst off] gathers all segments into [dst] starting at
    [off]; returns bytes written. This is the explicit "POSIX copy" the
    paper's zero-copy interface avoids.
    @raise Invalid_argument if [dst] is too small. *)

val sub_string : t -> int -> int -> string
(** [sub_string t pos len] reads a byte range crossing segment
    boundaries. *)

val equal : t -> t -> bool
(** Byte-wise payload equality (segmentation-insensitive). *)

val free : t -> unit
(** Free every segment (application reference drop; see
    {!Buffer.free}). *)

val io_hold : t -> unit
val io_release : t -> unit

val pp : Format.formatter -> t -> unit
