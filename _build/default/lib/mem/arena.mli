(** Buddy allocator over a single {!Region}.

    The region size must be a power of two; allocations are rounded up
    to the next power of two, with a configurable minimum block. Frees
    coalesce buddies eagerly, so a fully-freed arena always returns to
    one maximal block. *)

type t

type block = { offset : int; size : int; level : int }
(** An allocation: [size] bytes at [offset] in the arena's region.
    [level] is internal bookkeeping needed by {!free}. *)

val create : ?min_block:int -> Region.t -> t
(** @raise Invalid_argument if the region size is not a power of two or
    smaller than [min_block] (default 64). *)

val region : t -> Region.t

val alloc : t -> int -> block option
(** [alloc t n] reserves a block of at least [n] bytes ([n >= 1]), or
    [None] if fragmentation or capacity prevents it. *)

val free : t -> block -> unit
(** Return a block. @raise Invalid_argument on a block this arena did
    not allocate or that was already freed (double free). *)

val live_bytes : t -> int
(** Sum of sizes of outstanding blocks. *)

val is_quiescent : t -> bool
(** True when nothing is allocated (the arena is one maximal block). *)
