(** Composed queues: [filter], [map], [sort], [merge] and [qconnect]
    (Figure 3's queue-manipulation calls), working over {e any}
    underlying queue kind.

    Each composed queue keeps one pop outstanding on each parent
    (prefetch) and transforms the elements as they arrive; pushes are
    transformed and forwarded. The CPU cost of evaluating a filter or
    map here is charged per element — this is the "default to using the
    CPU if necessary" fallback of §4.3; the runtime offloads to a
    programmable device instead when it can. *)

val filter :
  tokens:Token.t ->
  engine:Dk_sim.Engine.t ->
  parent:Qimpl.t ->
  pred:(Dk_mem.Sga.t -> bool) ->
  elem_cost:(Dk_mem.Sga.t -> int64) ->
  Qimpl.t
(** Pops yield only elements satisfying [pred]; pushes forward to the
    parent only when [pred] holds. [elem_cost] is the CPU charge per
    evaluated element. *)

val map :
  tokens:Token.t ->
  engine:Dk_sim.Engine.t ->
  parent:Qimpl.t ->
  fn:(Dk_mem.Sga.t -> Dk_mem.Sga.t) ->
  elem_cost:(Dk_mem.Sga.t -> int64) ->
  Qimpl.t
(** Pops yield [fn elem]; pushes forward [fn elem] to the parent. *)

val sort :
  tokens:Token.t ->
  engine:Dk_sim.Engine.t ->
  parent:Qimpl.t ->
  higher_priority:(Dk_mem.Sga.t -> Dk_mem.Sga.t -> bool) ->
  Qimpl.t
(** Pops yield the highest-priority buffered element (§4.3: "a pop from
    the sorted queue returns the element with the highest priority").
    Elements are drained eagerly from the parent into the priority
    structure; ties pop in arrival order. Pushes forward unchanged. *)

val merge :
  tokens:Token.t -> engine:Dk_sim.Engine.t -> a:Qimpl.t -> b:Qimpl.t -> Qimpl.t
(** A pop returns the next element from either parent; a push goes to
    both (the sga's segments are shared, not copied). *)

val qconnect :
  tokens:Token.t -> src:Qimpl.t -> dst:Qimpl.t -> unit
(** Splice: every element popped from [src] is pushed to [dst],
    indefinitely. *)
