(** Kernel-fallback I/O queues: the Demikernel interface implemented
    over the legacy POSIX kernel (no accelerator at all).

    This is the portability backstop the architecture implies (and the
    authors' own codebase calls "Catnap"): the same application code
    runs unchanged on a host with no kernel-bypass hardware — it just
    pays the kernel's syscall, copy and wakeup costs on every
    operation. Messages keep their atomic-sga semantics via the same
    framing used on TCP queues. *)

val of_fd :
  tokens:Token.t ->
  posix:Dk_kernel.Posix.t ->
  fd:Dk_kernel.Posix.fd ->
  unit ->
  Qimpl.t
(** Wrap a connected socket fd as an I/O queue. The queue owns the fd
    (close closes it). *)

val listener :
  tokens:Token.t ->
  posix:Dk_kernel.Posix.t ->
  port:int ->
  register:(Qimpl.t -> Types.qd) ->
  (Qimpl.t, [ `In_use ]) result
(** Listening queue: pops complete with [Accepted qd]. *)
