(** Storage I/O queues: a log-structured, accelerator-specific layout
    (§5.3) directly on the block device.

    Each queue owns a contiguous range of blocks and treats it as an
    append-only record log. [push] appends one record — the framed sga
    plus a CRC-32 — straight to the device (doorbell + DMA + flash
    program, no syscalls, no VFS, no page cache, no copies charged);
    the token completes when the write is durable. [pop] streams
    records back from the head in FIFO order, reading blocks on demand.

    Because the layout is self-describing (length-prefixed, CRC-sealed
    records), a queue can be {!recover}ed from the device alone — the
    trade-off §5.3 raises is that only a libOS that knows this layout
    can read the data. *)

val record_overhead : int
(** Bytes added per record (length prefix + CRC). *)

val create :
  tokens:Token.t ->
  engine:Dk_sim.Engine.t ->
  disp:Block_dispatch.t ->
  base_lba:int ->
  capacity_blocks:int ->
  ?existing_len:int ->
  unit ->
  Qimpl.t
(** [existing_len] resumes an already-written log (from {!recover});
    pops then replay existing records before any new pushes. *)

val recover :
  engine:Dk_sim.Engine.t ->
  disp:Block_dispatch.t ->
  base_lba:int ->
  capacity_blocks:int ->
  (int -> unit) ->
  unit
(** Scan the log from [base_lba], validating record CRCs, and pass the
    recovered byte length to the continuation (asynchronously — device
    reads take time). A torn or corrupt tail truncates the log there. *)
