type state =
  | Pending
  | Watched of (Types.op_result -> unit)
  | Done of Types.op_result

type t = {
  table : (Types.qtoken, state) Hashtbl.t;
  mutable next : int;
  mutable pending : int;
}

let create () = { table = Hashtbl.create 64; next = 1; pending = 0 }

let fresh t =
  let tok = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.table tok Pending;
  t.pending <- t.pending + 1;
  tok

let complete t tok result =
  match Hashtbl.find_opt t.table tok with
  | Some Pending ->
      Hashtbl.replace t.table tok (Done result);
      t.pending <- t.pending - 1
  | Some (Watched k) ->
      Hashtbl.remove t.table tok;
      t.pending <- t.pending - 1;
      k result
  | Some (Done _) -> invalid_arg "Token.complete: token already completed"
  | None -> invalid_arg "Token.complete: unknown token"

let status t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Pending | Watched _) -> `Pending
  | Some (Done _) -> `Done
  | None -> `Unknown

let peek t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Done r) -> Some r
  | Some (Pending | Watched _) | None -> None

let redeem t tok =
  match Hashtbl.find_opt t.table tok with
  | Some (Done r) ->
      Hashtbl.remove t.table tok;
      Some r
  | Some (Pending | Watched _) | None -> None

let watch t tok k =
  match Hashtbl.find_opt t.table tok with
  | Some Pending -> Hashtbl.replace t.table tok (Watched k)
  | Some (Done r) ->
      Hashtbl.remove t.table tok;
      k r
  | Some (Watched _) -> invalid_arg "Token.watch: already watched"
  | None -> invalid_arg "Token.watch: unknown token"

let outstanding t = t.pending
