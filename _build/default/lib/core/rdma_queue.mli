(** RDMA I/O queues (the RDMA-class libOS, Table 1 middle column).

    The device provides reliable delivery but, as §2 notes, "to send and
    receive data, applications must still supply OS buffer management
    and flow control". This libOS supplies both:

    - {b Buffer management}: it keeps [depth] registered receive buffers
      posted at all times, replenishing from the memory manager as
      messages arrive, so the device never hits receiver-not-ready.
    - {b Flow control}: it caps in-flight sends at [depth] credits,
      queueing excess pushes, so a burst can never exceed the receive
      buffers the peer has posted.

    Pops deliver the receive buffer itself (zero copy): the application
    frees it when done, and free-protection covers the in-flight
    window. *)

val create :
  tokens:Token.t ->
  manager:Dk_mem.Manager.t ->
  qp:Dk_device.Rdma.qp ->
  ?depth:int ->
  ?recv_size:int ->
  unit ->
  (Qimpl.t, Types.error) result
(** The queue pair must already be connected; [depth] defaults to 64
    buffers of [recv_size] (default 16 KiB) each. Both endpoints must
    use the same [depth] for the credit scheme to be safe. *)
