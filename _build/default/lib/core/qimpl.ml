type t = {
  kind : string;
  push : Dk_mem.Sga.t -> Types.qtoken -> unit;
  pop : Types.qtoken -> unit;
  close : unit -> unit;
}

let not_supported tokens ~kind =
  {
    kind;
    push = (fun _ tok -> Token.complete tokens tok (Types.Failed `Not_supported));
    pop = (fun tok -> Token.complete tokens tok (Types.Failed `Not_supported));
    close = (fun () -> ());
  }
