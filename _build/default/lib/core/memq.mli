(** In-memory Demikernel queue (the plain [queue()] syscall of
    Figure 3).

    Push completes immediately; pop returns elements in FIFO order with
    atomic (sga) granularity. Used directly by applications for
    intra-process pipelines and as the substrate for composed queues. *)

type t

val create : Token.t -> t
val impl : t -> Qimpl.t

val mailbox : t -> Mailbox.t
(** Exposed for composed queues that tap deliveries. *)
