type t = {
  tokens : Token.t;
  ready : Types.op_result Queue.t;
  waiters : Types.qtoken Queue.t;
  mutable closed : bool;
  mutable on_deliver : unit -> unit;
}

let create tokens =
  {
    tokens;
    ready = Queue.create ();
    waiters = Queue.create ();
    closed = false;
    on_deliver = (fun () -> ());
  }

let deliver t result =
  (match Queue.take_opt t.waiters with
  | Some tok -> Token.complete t.tokens tok result
  | None -> Queue.add result t.ready);
  t.on_deliver ()

let pop t tok =
  match Queue.take_opt t.ready with
  | Some result -> Token.complete t.tokens tok result
  | None ->
      if t.closed then Token.complete t.tokens tok (Types.Failed `Queue_closed)
      else Queue.add tok t.waiters

let close t =
  if not t.closed then begin
    t.closed <- true;
    Queue.iter
      (fun tok -> Token.complete t.tokens tok (Types.Failed `Queue_closed))
      t.waiters;
    Queue.clear t.waiters
  end

let buffered t = Queue.length t.ready
let waiting t = Queue.length t.waiters
let set_on_deliver t f = t.on_deliver <- f
