(** Shared completion routing for one block device.

    The device has a single completion queue; this dispatcher lets any
    number of file queues (and the recovery scanner) submit operations
    with per-operation continuations. *)

type t

val create : Dk_device.Block.t -> t
val block : t -> Dk_device.Block.t

val read : t -> lba:int -> (Dk_device.Block.completion -> unit) -> bool
(** [false] if the submission queue is full (continuation dropped). *)

val write :
  t -> lba:int -> string -> (Dk_device.Block.completion -> unit) -> bool
