module Posix = Dk_kernel.Posix
module Framing = Dk_net.Framing

type conn_state = {
  tokens : Token.t;
  posix : Posix.t;
  fd : Posix.fd;
  epfd : Posix.fd;
  mbox : Mailbox.t;
  decoder : Framing.decoder;
  txq : (string ref * Types.qtoken) Queue.t;
  mutable closed : bool;
}

let read_chunk = 16384

let update_interest st =
  let interest =
    if Queue.is_empty st.txq then [ `In ] else [ `In; `Out ]
  in
  ignore (Posix.epoll_add st.posix st.epfd st.fd interest)

let fail_tx st err =
  Queue.iter
    (fun (_, tok) -> Token.complete st.tokens tok (Types.Failed err))
    st.txq;
  Queue.clear st.txq

let close_conn st err =
  if not st.closed then begin
    st.closed <- true;
    fail_tx st err;
    Mailbox.close st.mbox;
    Posix.epoll_del st.posix st.epfd st.fd
  end

let pump_tx st =
  let progress = ref true in
  while !progress && not st.closed do
    progress := false;
    match Queue.peek_opt st.txq with
    | None -> ()
    | Some (remaining, tok) -> (
        match Posix.write st.posix st.fd !remaining with
        | Ok n ->
            remaining := String.sub !remaining n (String.length !remaining - n);
            if String.length !remaining = 0 then begin
              ignore (Queue.pop st.txq);
              Token.complete st.tokens tok Types.Pushed;
              progress := true
            end
        | Error `Again -> ()
        | Error _ -> close_conn st `Queue_closed)
  done;
  update_interest st

let pump_rx st =
  let buf = Bytes.create read_chunk in
  let rec drain () =
    if not st.closed then
      match Posix.read st.posix st.fd buf 0 read_chunk with
      | Ok 0 -> close_conn st `Queue_closed (* EOF *)
      | Ok n ->
          Framing.feed st.decoder (Bytes.sub_string buf 0 n);
          let rec deliver () =
            match Framing.next st.decoder with
            | Some segments ->
                Mailbox.deliver st.mbox
                  (Types.Popped (Dk_mem.Sga.of_strings segments));
                deliver ()
            | None -> ()
          in
          deliver ();
          drain ()
      | Error `Again -> ()
      | Error _ -> close_conn st `Queue_closed
  in
  drain ()

(* The kernel-style event pump: block in epoll, handle, re-block. *)
let rec block_loop st =
  if not st.closed then
    Posix.epoll_wait_block st.posix st.epfd ~max:4 (fun events ->
        List.iter
          (fun (_, ev) ->
            match ev with `In -> pump_rx st | `Out -> pump_tx st)
          events;
        block_loop st)

let of_fd ~tokens ~posix ~fd () =
  let epfd = Posix.epoll_create posix in
  let st =
    {
      tokens;
      posix;
      fd;
      epfd;
      mbox = Mailbox.create tokens;
      decoder = Framing.create ();
      txq = Queue.create ();
      closed = false;
    }
  in
  ignore (Posix.epoll_add posix epfd fd [ `In ]);
  block_loop st;
  {
    Qimpl.kind = "posix-tcp";
    push =
      (fun sga tok ->
        if st.closed then Token.complete tokens tok (Types.Failed `Queue_closed)
        else begin
          Queue.add (ref (Framing.encode_sga sga), tok) st.txq;
          pump_tx st
        end);
    pop = (fun tok -> Mailbox.pop st.mbox tok);
    close =
      (fun () ->
        close_conn st `Queue_closed;
        Posix.close st.posix st.fd);
  }

let listener ~tokens ~posix ~port ~register =
  let lsock = Posix.socket posix in
  match Posix.listen posix lsock ~port with
  | Error `In_use -> Error `In_use
  | Error _ -> Error `In_use
  | Ok () ->
      let epfd = Posix.epoll_create posix in
      ignore (Posix.epoll_add posix epfd lsock [ `In ]);
      let mbox = Mailbox.create tokens in
      let closed = ref false in
      let rec accept_loop () =
        if not !closed then
          Posix.epoll_wait_block posix epfd ~max:4 (fun _ ->
              let rec drain () =
                match Posix.accept posix lsock with
                | Ok fd ->
                    let impl = of_fd ~tokens ~posix ~fd () in
                    Mailbox.deliver mbox (Types.Accepted (register impl));
                    drain ()
                | Error `Again -> ()
                | Error _ -> ()
              in
              drain ();
              accept_loop ())
      in
      accept_loop ();
      Ok
        {
          Qimpl.kind = "posix-listen";
          push =
            (fun _ tok ->
              Token.complete tokens tok (Types.Failed `Not_supported));
          pop = (fun tok -> Mailbox.pop mbox tok);
          close =
            (fun () ->
              closed := true;
              Posix.close posix lsock;
              Mailbox.close mbox);
        }
