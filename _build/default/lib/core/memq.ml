type t = { tokens : Token.t; mbox : Mailbox.t }

let create tokens = { tokens; mbox = Mailbox.create tokens }

let impl t =
  {
    Qimpl.kind = "memq";
    push =
      (fun sga tok ->
        Mailbox.deliver t.mbox (Types.Popped sga);
        Token.complete t.tokens tok Types.Pushed);
    pop = (fun tok -> Mailbox.pop t.mbox tok);
    close = (fun () -> Mailbox.close t.mbox);
  }

let mailbox t = t.mbox
