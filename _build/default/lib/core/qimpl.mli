(** Queue implementation interface.

    Each queue kind (network, RDMA, storage, in-memory, composed)
    provides these operations; the {!Demi} runtime owns the descriptor
    table that maps [qd]s to implementations. [push]/[pop] receive
    freshly minted tokens and must complete them exactly once (possibly
    immediately). *)

type t = {
  kind : string;  (** for diagnostics: "memq", "tcp", "rdma", ... *)
  push : Dk_mem.Sga.t -> Types.qtoken -> unit;
  pop : Types.qtoken -> unit;
  close : unit -> unit;
}

val not_supported : Token.t -> kind:string -> t
(** A queue that fails every operation — placeholder for descriptors in
    intermediate states (e.g. an unbound socket). *)
