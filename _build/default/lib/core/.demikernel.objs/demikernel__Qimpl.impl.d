lib/core/qimpl.ml: Dk_mem Token Types
