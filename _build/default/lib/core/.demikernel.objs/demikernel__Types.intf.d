lib/core/types.mli: Dk_mem Format
