lib/core/file_queue.ml: Block_dispatch Bytes Char Dk_device Dk_mem Dk_net Dk_sim Dk_util Int32 Mailbox Qimpl Queue Stdlib String Token Types
