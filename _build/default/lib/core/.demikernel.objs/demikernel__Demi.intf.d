lib/core/demi.mli: Dk_device Dk_kernel Dk_mem Dk_net Dk_sim Types
