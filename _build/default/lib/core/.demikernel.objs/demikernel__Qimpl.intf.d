lib/core/qimpl.mli: Dk_mem Token Types
