lib/core/mailbox.mli: Token Types
