lib/core/posix_queue.mli: Dk_kernel Qimpl Token Types
