lib/core/net_queue.ml: Dk_mem Dk_net Mailbox Qimpl Queue String Token Types
