lib/core/rdma_queue.mli: Dk_device Dk_mem Qimpl Token Types
