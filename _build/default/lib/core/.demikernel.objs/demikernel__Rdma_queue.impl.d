lib/core/rdma_queue.ml: Dk_device Dk_mem Hashtbl Mailbox Qimpl Queue Token Types
