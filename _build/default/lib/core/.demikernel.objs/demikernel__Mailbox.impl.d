lib/core/mailbox.ml: Queue Token Types
