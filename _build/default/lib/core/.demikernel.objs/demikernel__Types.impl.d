lib/core/types.ml: Dk_mem Format
