lib/core/token.mli: Types
