lib/core/memq.ml: Mailbox Qimpl Token Types
