lib/core/posix_queue.ml: Bytes Dk_kernel Dk_mem Dk_net List Mailbox Qimpl Queue String Token Types
