lib/core/token.ml: Hashtbl Types
