lib/core/block_dispatch.ml: Dk_device Hashtbl
