lib/core/file_queue.mli: Block_dispatch Dk_sim Qimpl Token
