lib/core/net_queue.mli: Dk_net Qimpl Token Types
