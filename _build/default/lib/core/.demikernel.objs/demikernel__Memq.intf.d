lib/core/memq.mli: Mailbox Qimpl Token
