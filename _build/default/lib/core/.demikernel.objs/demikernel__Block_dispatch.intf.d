lib/core/block_dispatch.mli: Dk_device
