lib/core/compose.ml: Dk_sim List Mailbox Qimpl Token Types
