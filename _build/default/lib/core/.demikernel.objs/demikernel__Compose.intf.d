lib/core/compose.mli: Dk_mem Dk_sim Qimpl Token
