(** Queue-token table.

    Every non-blocking push/pop mints a fresh token; the queue
    implementation completes it exactly once; the application redeems
    it with a [wait_*] call, which removes it. Because each token is
    unique to a single queue operation, a completion wakes exactly the
    operation's waiter — the contrast §4.4 draws with epoll's wake-all
    file-descriptor readiness. *)

type t

val create : unit -> t

val fresh : t -> Types.qtoken
(** Mint a pending token. *)

val complete : t -> Types.qtoken -> Types.op_result -> unit
(** Deliver the result. @raise Invalid_argument if the token is unknown
    or already completed (queue implementations must complete exactly
    once). *)

val status : t -> Types.qtoken -> [ `Pending | `Done | `Unknown ]

val peek : t -> Types.qtoken -> Types.op_result option
(** Result if completed, without redeeming. *)

val redeem : t -> Types.qtoken -> Types.op_result option
(** Take the result and forget the token. *)

val watch : t -> Types.qtoken -> (Types.op_result -> unit) -> unit
(** Internal plumbing for composed queues: run the callback when the
    token completes (immediately if it already has), auto-redeeming it.
    A watched token must not also be waited on. *)

val outstanding : t -> int
(** Pending (unredeemed, uncompleted) tokens. *)
