module Block = Dk_device.Block

type t = {
  block : Block.t;
  handlers : (int, Block.completion -> unit) Hashtbl.t;
  mutable next_wr : int;
}

let create block =
  let t = { block; handlers = Hashtbl.create 32; next_wr = 1 } in
  Block.set_cq_notify block (fun () ->
      let rec loop () =
        match Block.poll_cq block with
        | None -> ()
        | Some c ->
            (match Hashtbl.find_opt t.handlers c.Block.wr_id with
            | Some k ->
                Hashtbl.remove t.handlers c.Block.wr_id;
                k c
            | None -> ());
            loop ()
      in
      loop ());
  t

let block t = t.block

let fresh t =
  let id = t.next_wr in
  t.next_wr <- t.next_wr + 1;
  id

let read t ~lba k =
  let wr = fresh t in
  Hashtbl.replace t.handlers wr k;
  let ok = Block.submit_read t.block ~wr_id:wr ~lba in
  if not ok then Hashtbl.remove t.handlers wr;
  ok

let write t ~lba data k =
  let wr = fresh t in
  Hashtbl.replace t.handlers wr k;
  let ok = Block.submit_write t.block ~wr_id:wr ~lba data in
  if not ok then Hashtbl.remove t.handlers wr;
  ok
