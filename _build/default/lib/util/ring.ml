type t = {
  data : bytes;
  cap : int;
  mutable head : int; (* read position *)
  mutable len : int;  (* bytes stored *)
}

let create cap =
  if cap <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Bytes.create cap; cap; head = 0; len = 0 }

let capacity t = t.cap
let length t = t.len
let available t = t.cap - t.len
let is_empty t = t.len = 0
let is_full t = t.len = t.cap

(* Copy [n] bytes of [src] at [soff] into the ring starting at the ring's
   tail; the caller guarantees [n <= available t]. Handles wraparound with
   at most two blits. *)
let blit_in t src soff n =
  let tail = (t.head + t.len) mod t.cap in
  let first = min n (t.cap - tail) in
  Bytes.blit src soff t.data tail first;
  if n > first then Bytes.blit src (soff + first) t.data 0 (n - first)

let blit_out t dst doff n =
  let first = min n (t.cap - t.head) in
  Bytes.blit t.data t.head dst doff first;
  if n > first then Bytes.blit t.data 0 dst (doff + first) (n - first)

let write t src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Ring.write";
  let n = min len (available t) in
  blit_in t src off n;
  t.len <- t.len + n;
  n

let peek t dst off len =
  if off < 0 || len < 0 || off + len > Bytes.length dst then
    invalid_arg "Ring.peek";
  let n = min len t.len in
  blit_out t dst off n;
  n

let drop t n =
  if n < 0 then invalid_arg "Ring.drop";
  let n = min n t.len in
  t.head <- (t.head + n) mod t.cap;
  t.len <- t.len - n;
  n

let read t dst off len =
  let n = peek t dst off len in
  ignore (drop t n);
  n

let write_string t s =
  write t (Bytes.unsafe_of_string s) 0 (String.length s)

let read_all t =
  let buf = Bytes.create t.len in
  let n = read t buf 0 t.len in
  assert (n = Bytes.length buf);
  Bytes.unsafe_to_string buf

let clear t =
  t.head <- 0;
  t.len <- 0
