(** Binary min-heap keyed by [int64] priorities with FIFO tie-breaking.

    The discrete-event engine stores future events here; ties on the
    timestamp are broken by insertion order so simulation runs are
    deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int64 -> 'a -> unit
(** [push t key v] inserts [v] with priority [key]. *)

val min_key : 'a t -> int64 option
(** Smallest key, if any. *)

val min : 'a t -> (int64 * 'a) option
(** The entry {!pop} would return, without removing it. *)

val pop : 'a t -> (int64 * 'a) option
(** Removes and returns the entry with the smallest key; among equal keys,
    the one inserted first. *)

val clear : 'a t -> unit
