type 'a t = { q : 'a Queue.t; cap : int }

let create cap =
  if cap <= 0 then invalid_arg "Bqueue.create";
  { q = Queue.create (); cap }

let capacity t = t.cap
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let is_full t = Queue.length t.q >= t.cap

let push t v =
  if is_full t then false
  else begin
    Queue.add v t.q;
    true
  end

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q
let clear t = Queue.clear t.q
let iter f t = Queue.iter f t.q
