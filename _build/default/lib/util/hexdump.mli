(** Debug hexdump formatting for packet traces. *)

val pp : Format.formatter -> string -> unit
(** Render a string as a classic 16-byte-per-line hex + ASCII dump. *)

val to_string : string -> string
