(** LEB128-style variable-length integers, used by the wire framing layer
    (§5.2 of the paper) to delimit scatter-gather segments cheaply. *)

val encoded_size : int -> int
(** Bytes needed to encode a non-negative value. *)

val write : Buffer.t -> int -> unit
(** Append the encoding of a non-negative value.
    @raise Invalid_argument on negative input. *)

val read : bytes -> int -> (int * int) option
(** [read buf off] decodes a value at [off]; returns [(value, bytes
    consumed)] or [None] if the buffer ends mid-encoding. *)
