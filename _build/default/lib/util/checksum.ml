let ones_complement_sum ?(init = 0) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum";
  let sum = ref init in
  let i = ref off in
  let stop = off + len - 1 in
  while !i < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then
    sum := !sum + (Char.code (Bytes.get buf (off + len - 1)) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let compute buf off len = finish (ones_complement_sum buf off len)

let verify buf off len =
  finish (ones_complement_sum buf off len) = 0
