(** Fixed-size bitset used for descriptor allocation maps in device rings
    and the queue-descriptor table. *)

type t

val create : int -> t
(** [create n] is a set over [0 .. n-1], initially empty. *)

val size : t -> int
val mem : t -> int -> bool
val set : t -> int -> unit
val unset : t -> int -> unit
val cardinal : t -> int

val first_clear : t -> int option
(** Lowest index not in the set, if any — the next free descriptor. *)

val iter_set : (int -> unit) -> t -> unit
