let pp ppf s =
  let n = String.length s in
  let line off =
    let stop = min n (off + 16) in
    Format.fprintf ppf "%08x  " off;
    for i = off to off + 15 do
      if i < stop then Format.fprintf ppf "%02x " (Char.code s.[i])
      else Format.fprintf ppf "   ";
      if i - off = 7 then Format.fprintf ppf " "
    done;
    Format.fprintf ppf " |";
    for i = off to stop - 1 do
      let c = s.[i] in
      Format.fprintf ppf "%c" (if c >= ' ' && c < '\x7f' then c else '.')
    done;
    Format.fprintf ppf "|"
  in
  let rec loop off =
    if off < n then begin
      line off;
      if off + 16 < n then Format.fprintf ppf "@\n";
      loop (off + 16)
    end
  in
  if n = 0 then Format.fprintf ppf "(empty)" else loop 0

let to_string s = Format.asprintf "%a" pp s
