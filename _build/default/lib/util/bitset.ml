type t = { words : int array; n : int; mutable count : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + 62) / 63) 0; n; count = 0 }

let size t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let set t i =
  check t i;
  if not (mem t i) then begin
    t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63));
    t.count <- t.count + 1
  end

let unset t i =
  check t i;
  if mem t i then begin
    t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63));
    t.count <- t.count - 1
  end

let cardinal t = t.count

let first_clear t =
  let rec scan_word w base bit =
    if bit = 63 || base + bit >= t.n then None
    else if w land (1 lsl bit) = 0 then Some (base + bit)
    else scan_word w base (bit + 1)
  in
  let rec loop wi =
    if wi >= Array.length t.words then None
    else
      match scan_word t.words.(wi) (wi * 63) 0 with
      | Some i -> Some i
      | None -> loop (wi + 1)
  in
  if t.count = t.n then None else loop 0

let iter_set f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done
