(** RFC 1071 Internet checksum, used by the IPv4/UDP/TCP layers of the
    user-level network stack. *)

val ones_complement_sum : ?init:int -> bytes -> int -> int -> int
(** [ones_complement_sum ?init buf off len] folds the 16-bit one's
    complement sum of [len] bytes at [off] into [init] (default 0).
    The result is a partial sum, not yet complemented. *)

val finish : int -> int
(** Fold carries and take the one's complement, yielding the 16-bit
    checksum value to store in a header. *)

val compute : bytes -> int -> int -> int
(** [compute buf off len] is [finish (ones_complement_sum buf off len)]. *)

val verify : bytes -> int -> int -> bool
(** A region whose checksum field is filled in verifies iff the sum over
    the whole region (including the field) folds to zero. *)
