(** Fixed-capacity byte ring buffer (single producer, single consumer).

    Used for TCP send/receive windows, kernel socket buffers and pipe
    buffers. All operations are O(length copied); the buffer never
    reallocates. *)

type t

val create : int -> t
(** [create capacity] is an empty ring holding at most [capacity] bytes.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val length : t -> int
(** Bytes currently stored. *)

val available : t -> int
(** Free space, [capacity t - length t]. *)

val is_empty : t -> bool
val is_full : t -> bool

val write : t -> bytes -> int -> int -> int
(** [write t src off len] appends up to [len] bytes of [src] starting at
    [off]; returns the number of bytes actually written (may be less than
    [len] if the ring fills). *)

val read : t -> bytes -> int -> int -> int
(** [read t dst off len] removes up to [len] bytes into [dst] at [off];
    returns the number of bytes actually read. *)

val peek : t -> bytes -> int -> int -> int
(** Like {!read} but does not consume. *)

val drop : t -> int -> int
(** [drop t n] discards up to [n] bytes; returns the number dropped. *)

val write_string : t -> string -> int
(** [write_string t s] appends as much of [s] as fits. *)

val read_all : t -> string
(** Consumes and returns the whole contents. *)

val clear : t -> unit
