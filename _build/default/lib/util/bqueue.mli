(** Bounded FIFO queue, the shape of a hardware descriptor ring. *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument if capacity is not positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [false] when full (the element is not enqueued). *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
