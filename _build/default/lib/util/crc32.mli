(** CRC-32 (IEEE 802.3 polynomial), used to protect records in the
    log-structured storage layout. *)

val digest : ?init:int32 -> bytes -> int -> int -> int32
(** [digest ?init buf off len] extends the running CRC [init]
    (default: the empty-message CRC) over the given region. *)

val digest_string : string -> int32
