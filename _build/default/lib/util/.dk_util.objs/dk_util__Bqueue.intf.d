lib/util/bqueue.mli:
