lib/util/hexdump.mli: Format
