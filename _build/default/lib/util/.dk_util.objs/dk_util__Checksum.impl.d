lib/util/checksum.ml: Bytes Char
