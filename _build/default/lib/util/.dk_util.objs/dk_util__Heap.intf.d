lib/util/heap.mli:
