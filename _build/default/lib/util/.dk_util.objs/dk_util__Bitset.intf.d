lib/util/bitset.mli:
