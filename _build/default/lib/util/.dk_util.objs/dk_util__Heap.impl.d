lib/util/heap.ml: Array Int64
