lib/util/bqueue.ml: Queue
