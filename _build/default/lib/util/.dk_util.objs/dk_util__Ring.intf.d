lib/util/ring.mli:
