lib/util/checksum.mli:
