lib/util/ring.ml: Bytes String
