lib/util/hexdump.ml: Char Format String
