let encoded_size v =
  if v < 0 then invalid_arg "Varint.encoded_size";
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let write buf v =
  if v < 0 then invalid_arg "Varint.write";
  let rec loop v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      loop (v lsr 7)
    end
  in
  loop v

let read buf off =
  let len = Bytes.length buf in
  let rec loop i shift acc =
    if i >= len || shift > 56 then None
    else
      let b = Char.code (Bytes.get buf i) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then Some (acc, i - off + 1)
      else loop (i + 1) (shift + 7) acc
  in
  if off < 0 || off >= len then None else loop off 0 0
