type mac = int
type ip = int

let mac_broadcast = 0xffffffffffff

(* 0x02 in the first octet marks a locally-administered address. *)
let mac_of_index n = 0x020000000000 lor (n land 0xffffffff)

let pp_mac ppf m =
  Format.fprintf ppf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xff)
    ((m lsr 32) land 0xff)
    ((m lsr 24) land 0xff)
    ((m lsr 16) land 0xff)
    ((m lsr 8) land 0xff)
    (m land 0xff)

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | Some _ | None -> invalid_arg "Addr.ip_of_string"
      in
      (octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d
  | _ -> invalid_arg "Addr.ip_of_string"

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d"
    ((ip lsr 24) land 0xff)
    ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff)
    (ip land 0xff)

let pp_ip ppf ip = Format.fprintf ppf "%s" (ip_to_string ip)

type endpoint = { ip : ip; port : int }

let endpoint ip port =
  if port < 0 || port > 0xffff then invalid_arg "Addr.endpoint";
  { ip; port }

let pp_endpoint ppf e = Format.fprintf ppf "%a:%d" pp_ip e.ip e.port
let equal_endpoint a b = a.ip = b.ip && a.port = b.port
