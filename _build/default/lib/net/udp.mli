(** UDP datagram codec with pseudo-header checksum. *)

type t = { src_port : int; dst_port : int; payload : string }

val header_size : int

val encode : src_ip:Addr.ip -> dst_ip:Addr.ip -> t -> string
val decode : src_ip:Addr.ip -> dst_ip:Addr.ip -> string -> (t, string) result
