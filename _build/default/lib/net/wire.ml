let get_u8 b i = Char.code (Bytes.get b i)
let set_u8 b i v = Bytes.set b i (Char.chr (v land 0xff))

let get_u16 b i = (get_u8 b i lsl 8) lor get_u8 b (i + 1)

let set_u16 b i v =
  set_u8 b i (v lsr 8);
  set_u8 b (i + 1) v

let get_u32 b i = (get_u16 b i lsl 16) lor get_u16 b (i + 2)

let set_u32 b i v =
  set_u16 b i (v lsr 16);
  set_u16 b (i + 2) v

let get_u48 b i = (get_u16 b i lsl 32) lor get_u32 b (i + 2)

let set_u48 b i v =
  set_u16 b i (v lsr 32);
  set_u32 b (i + 2) v
