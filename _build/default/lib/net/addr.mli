(** Network addresses: 48-bit MAC and IPv4 addresses as OCaml ints,
    plus (ip, port) endpoints. *)

type mac = int
type ip = int

val mac_broadcast : mac
val mac_of_index : int -> mac
(** Locally-administered MAC for host [n] of a simulation. *)

val pp_mac : Format.formatter -> mac -> unit

val ip_of_string : string -> ip
(** Dotted quad. @raise Invalid_argument on malformed input. *)

val ip_to_string : ip -> string
val pp_ip : Format.formatter -> ip -> unit

type endpoint = { ip : ip; port : int }

val endpoint : ip -> int -> endpoint
val pp_endpoint : Format.formatter -> endpoint -> unit
val equal_endpoint : endpoint -> endpoint -> bool
