(** Message framing over byte streams (§5.2).

    Demikernel queues carry atomic scatter-gather arrays, but TCP is a
    byte stream, so the libOS inserts framing: a varint segment count,
    one varint length per segment, then the segment bytes. The decoder
    is incremental — feed it arbitrary stream fragments and it yields
    complete messages only, preserving the original segment
    boundaries. *)

val encode : string list -> string
(** Frame one message made of the given segments. *)

val encode_sga : Dk_mem.Sga.t -> string

val frame_overhead : string list -> int
(** Header bytes added for a message with these segments. *)

type decoder

val create : unit -> decoder

val feed : decoder -> string -> unit
(** Append stream bytes (any fragmentation). *)

val next : decoder -> string list option
(** The next complete message's segments, or [None] if more bytes are
    needed. @raise Failure on a corrupt stream (length fields that
    cannot be decoded). *)

val buffered : decoder -> int
(** Bytes held awaiting completion. *)
