type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_seq : int;
  flags : flags;
  window : int;
  payload : string;
}

let header_size = 20
let no_flags = { syn = false; ack = false; fin = false; rst = false }

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor if f.ack then 0x10 else 0

let flags_of_int v =
  {
    fin = v land 0x01 <> 0;
    syn = v land 0x02 <> 0;
    rst = v land 0x04 <> 0;
    ack = v land 0x10 <> 0;
  }

let encode ~src_ip ~dst_ip t =
  let len = header_size + String.length t.payload in
  let b = Bytes.create len in
  Wire.set_u16 b 0 t.src_port;
  Wire.set_u16 b 2 t.dst_port;
  Wire.set_u32 b 4 (t.seq land 0xffffffff);
  Wire.set_u32 b 8 (t.ack_seq land 0xffffffff);
  Wire.set_u8 b 12 0x50; (* data offset = 5 words *)
  Wire.set_u8 b 13 (flags_to_int t.flags);
  Wire.set_u16 b 14 t.window;
  Wire.set_u16 b 16 0; (* checksum placeholder *)
  Wire.set_u16 b 18 0; (* urgent pointer *)
  Bytes.blit_string t.payload 0 b header_size (String.length t.payload);
  let pseudo = Ipv4.pseudo_header_sum ~src:src_ip ~dst:dst_ip ~proto:6 ~len in
  let csum =
    Dk_util.Checksum.finish
      (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 0 len)
  in
  Wire.set_u16 b 16 csum;
  Bytes.unsafe_to_string b

let decode ~src_ip ~dst_ip s =
  if String.length s < header_size then Error "tcp: too short"
  else
    let b = Bytes.unsafe_of_string s in
    let len = String.length s in
    let pseudo = Ipv4.pseudo_header_sum ~src:src_ip ~dst:dst_ip ~proto:6 ~len in
    let folded =
      Dk_util.Checksum.finish
        (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 0 len)
    in
    if folded <> 0 then Error "tcp: bad checksum"
    else if Wire.get_u8 b 12 lsr 4 <> 5 then Error "tcp: options unsupported"
    else
      Ok
        {
          src_port = Wire.get_u16 b 0;
          dst_port = Wire.get_u16 b 2;
          seq = Wire.get_u32 b 4;
          ack_seq = Wire.get_u32 b 8;
          flags = flags_of_int (Wire.get_u8 b 13);
          window = Wire.get_u16 b 14;
          payload = String.sub s header_size (len - header_size);
        }

let pp ppf t =
  let f = t.flags in
  Format.fprintf ppf "tcp %d->%d seq=%d ack=%d%s%s%s%s win=%d len=%d"
    t.src_port t.dst_port t.seq t.ack_seq
    (if f.syn then " SYN" else "")
    (if f.ack then " ACK" else "")
    (if f.fin then " FIN" else "")
    (if f.rst then " RST" else "")
    t.window (String.length t.payload)
