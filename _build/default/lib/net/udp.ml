type t = { src_port : int; dst_port : int; payload : string }

let header_size = 8

let encode ~src_ip ~dst_ip t =
  let len = header_size + String.length t.payload in
  let b = Bytes.create len in
  Wire.set_u16 b 0 t.src_port;
  Wire.set_u16 b 2 t.dst_port;
  Wire.set_u16 b 4 len;
  Wire.set_u16 b 6 0;
  Bytes.blit_string t.payload 0 b header_size (String.length t.payload);
  let pseudo = Ipv4.pseudo_header_sum ~src:src_ip ~dst:dst_ip ~proto:17 ~len in
  let csum =
    Dk_util.Checksum.finish (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 0 len)
  in
  Wire.set_u16 b 6 (if csum = 0 then 0xffff else csum);
  Bytes.unsafe_to_string b

let decode ~src_ip ~dst_ip s =
  if String.length s < header_size then Error "udp: too short"
  else
    let b = Bytes.unsafe_of_string s in
    let len = Wire.get_u16 b 4 in
    if len < header_size || len > String.length s then Error "udp: bad length"
    else begin
      let pseudo = Ipv4.pseudo_header_sum ~src:src_ip ~dst:dst_ip ~proto:17 ~len in
      let folded =
        Dk_util.Checksum.finish
          (Dk_util.Checksum.ones_complement_sum ~init:pseudo b 0 len)
      in
      if folded <> 0 then Error "udp: bad checksum"
      else
        Ok
          {
            src_port = Wire.get_u16 b 0;
            dst_port = Wire.get_u16 b 2;
            payload = String.sub s header_size (len - header_size);
          }
    end
