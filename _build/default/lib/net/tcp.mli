(** User-level TCP: connection state machine with handshake, teardown,
    cumulative ACKs, out-of-order reassembly, flow control (advertised
    windows), retransmission with exponential backoff, and slow-start /
    congestion-avoidance.

    This is the "complete user-level TCP stack" §2 says applications
    must supply to use a raw kernel-bypass NIC; here the libOS supplies
    it. The module is transport-only: segments enter via
    {!segment_arrives} and leave via the [emit] callback, so it is
    independently testable without a NIC. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val state_to_string : state -> string

type config = {
  mss : int;
  send_buffer : int;
  recv_buffer : int;
  rto_initial : int64;   (** retransmission timeout, ns *)
  rto_max : int64;
  max_retries : int;
  time_wait : int64;     (** 2MSL, ns *)
}

val default_config : config

type close_reason = [ `Normal | `Reset | `Timeout ]

type conn

type stats = {
  segs_sent : int;
  segs_received : int;
  bytes_sent : int;
  bytes_received : int;
  retransmits : int;       (** total, timeout- plus dupack-triggered *)
  fast_retransmits : int;  (** triggered by three duplicate ACKs *)
  dup_acks : int;
  out_of_order : int;
}

(** {2 Creation (used by the stack)} *)

val create_active :
  engine:Dk_sim.Engine.t ->
  config:config ->
  local:Addr.endpoint ->
  remote:Addr.endpoint ->
  iss:int ->
  emit:(Tcp_wire.t -> unit) ->
  conn
(** Sends the SYN immediately (state [Syn_sent]). *)

val create_passive :
  engine:Dk_sim.Engine.t ->
  config:config ->
  local:Addr.endpoint ->
  remote:Addr.endpoint ->
  iss:int ->
  emit:(Tcp_wire.t -> unit) ->
  remote_seq:int ->
  conn
(** For a SYN that arrived at a listener: replies SYN-ACK
    (state [Syn_rcvd]). *)

val segment_arrives : conn -> Tcp_wire.t -> unit

(** {2 Application interface} *)

val state : conn -> state
val local : conn -> Addr.endpoint
val remote : conn -> Addr.endpoint

val send : conn -> string -> int
(** Bytes accepted into the send buffer (0 when full or not writable in
    the current state). *)

val send_space : conn -> int
val recv_ready : conn -> int
val recv : conn -> int -> string
val recv_into : conn -> bytes -> int -> int -> int

val close : conn -> unit
(** Graceful: FIN after queued data drains. *)

val abort : conn -> unit
(** RST and drop. *)

val set_on_connect : conn -> (unit -> unit) -> unit
(** Runs when the connection reaches [Established]. *)

val set_on_readable : conn -> (unit -> unit) -> unit

(** [set_on_peer_fin] runs once when the peer's FIN is accepted (end of
    inbound data; already-received bytes remain readable). *)
val set_on_peer_fin : conn -> (unit -> unit) -> unit
val set_on_writable : conn -> (unit -> unit) -> unit
val set_on_close : conn -> (close_reason -> unit) -> unit

val set_internal_teardown : conn -> (close_reason -> unit) -> unit
(** Reserved for the owning stack: runs before [on_close] when the
    connection reaches [Closed], so the stack can drop its demux
    entry. *)

val stats : conn -> stats
