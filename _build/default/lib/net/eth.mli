(** Ethernet II framing. *)

type ethertype = Arp | Ipv4 | Unknown of int

type t = { dst : Addr.mac; src : Addr.mac; ethertype : ethertype; payload : string }

val header_size : int
val encode : t -> string
val decode : string -> (t, string) result
val pp : Format.formatter -> t -> unit
