type proto = Tcp | Udp | Unknown of int

type t = {
  src : Addr.ip;
  dst : Addr.ip;
  proto : proto;
  ttl : int;
  ident : int;
  payload : string;
}

let header_size = 20

let proto_to_int = function Tcp -> 6 | Udp -> 17 | Unknown v -> v
let proto_of_int = function 6 -> Tcp | 17 -> Udp | v -> Unknown v

let encode t =
  let total = header_size + String.length t.payload in
  let b = Bytes.create total in
  Wire.set_u8 b 0 0x45; (* version 4, ihl 5 *)
  Wire.set_u8 b 1 0;
  Wire.set_u16 b 2 total;
  Wire.set_u16 b 4 t.ident;
  Wire.set_u16 b 6 0; (* no fragmentation *)
  Wire.set_u8 b 8 t.ttl;
  Wire.set_u8 b 9 (proto_to_int t.proto);
  Wire.set_u16 b 10 0; (* checksum placeholder *)
  Wire.set_u32 b 12 t.src;
  Wire.set_u32 b 16 t.dst;
  let csum = Dk_util.Checksum.compute b 0 header_size in
  Wire.set_u16 b 10 csum;
  Bytes.blit_string t.payload 0 b header_size (String.length t.payload);
  Bytes.unsafe_to_string b

let decode s =
  if String.length s < header_size then Error "ipv4: too short"
  else
    let b = Bytes.unsafe_of_string s in
    if Wire.get_u8 b 0 <> 0x45 then Error "ipv4: bad version/ihl"
    else if not (Dk_util.Checksum.verify b 0 header_size) then
      Error "ipv4: bad header checksum"
    else
      let total = Wire.get_u16 b 2 in
      if total > String.length s || total < header_size then
        Error "ipv4: bad total length"
      else
        Ok
          {
            src = Wire.get_u32 b 12;
            dst = Wire.get_u32 b 16;
            proto = proto_of_int (Wire.get_u8 b 9);
            ttl = Wire.get_u8 b 8;
            ident = Wire.get_u16 b 4;
            payload = String.sub s header_size (total - header_size);
          }

let pseudo_header_sum ~src ~dst ~proto ~len =
  let b = Bytes.create 12 in
  Wire.set_u32 b 0 src;
  Wire.set_u32 b 4 dst;
  Wire.set_u8 b 8 0;
  Wire.set_u8 b 9 proto;
  Wire.set_u16 b 10 len;
  Dk_util.Checksum.ones_complement_sum b 0 12
