(** User-level network stack over a kernel-bypass NIC.

    One stack per NIC/host: ethernet framing, ARP resolution, IPv4,
    UDP sockets and TCP connections, driven entirely from user space by
    the simulation event loop (the NIC's rx-notify hook schedules a
    processing step; each processed segment charges
    [Cost.user_net_per_pkt] of CPU — no syscalls anywhere). *)

type t

type stats = {
  frames_in : int;
  frames_out : int;
  decode_errors : int;
  not_for_us : int;
  no_listener : int; (** TCP/UDP arrivals with no matching socket *)
}

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  nic:Dk_device.Nic.t ->
  ip:Addr.ip ->
  ?tcp_config:Tcp.config ->
  ?pkt_cost:int64 ->
  unit ->
  t
(** [pkt_cost] is the CPU charged per segment processed or built;
    defaults to [cost.user_net_per_pkt]. The simulated kernel reuses
    this stack with [cost.kernel_net_per_pkt] to model the in-kernel
    network stack of Figure 1's traditional architecture. *)

val engine : t -> Dk_sim.Engine.t
val ip : t -> Addr.ip
val mac : t -> Addr.mac
val nic : t -> Dk_device.Nic.t
val tcp_config : t -> Tcp.config

(** {2 UDP} *)

val udp_bind :
  t ->
  port:int ->
  recv:(src:Addr.endpoint -> string -> unit) ->
  (unit, [ `In_use ]) result

val udp_unbind : t -> port:int -> unit

val udp_send : t -> src_port:int -> dst:Addr.endpoint -> string -> unit
(** Resolves the destination MAC via ARP if needed (queuing the
    datagram meanwhile), then transmits. *)

(** {2 TCP} *)

val tcp_listen :
  t ->
  port:int ->
  on_accept:(Tcp.conn -> unit) ->
  (unit, [ `In_use ]) result
(** [on_accept] runs when a passive connection reaches ESTABLISHED. *)

val tcp_unlisten : t -> port:int -> unit

val tcp_connect : t -> dst:Addr.endpoint -> Tcp.conn
(** Starts the handshake and returns the connection in [Syn_sent];
    observe progress with {!Tcp.set_on_connect} / {!Tcp.set_on_close}.
    A RST from a closed port surfaces as [on_close `Reset]. *)

val connections : t -> int
val stats : t -> stats
