type ethertype = Arp | Ipv4 | Unknown of int

type t = { dst : Addr.mac; src : Addr.mac; ethertype : ethertype; payload : string }

let header_size = 14

let ethertype_to_int = function
  | Arp -> 0x0806
  | Ipv4 -> 0x0800
  | Unknown v -> v

let ethertype_of_int = function
  | 0x0806 -> Arp
  | 0x0800 -> Ipv4
  | v -> Unknown v

let encode t =
  let b = Bytes.create (header_size + String.length t.payload) in
  Wire.set_u48 b 0 t.dst;
  Wire.set_u48 b 6 t.src;
  Wire.set_u16 b 12 (ethertype_to_int t.ethertype);
  Bytes.blit_string t.payload 0 b header_size (String.length t.payload);
  Bytes.unsafe_to_string b

let decode s =
  if String.length s < header_size then Error "eth: frame too short"
  else
    let b = Bytes.unsafe_of_string s in
    Ok
      {
        dst = Wire.get_u48 b 0;
        src = Wire.get_u48 b 6;
        ethertype = ethertype_of_int (Wire.get_u16 b 12);
        payload = String.sub s header_size (String.length s - header_size);
      }

let pp ppf t =
  let kind =
    match t.ethertype with
    | Arp -> "arp"
    | Ipv4 -> "ipv4"
    | Unknown v -> Printf.sprintf "0x%04x" v
  in
  Format.fprintf ppf "eth %a -> %a (%s, %d B)" Addr.pp_mac t.src Addr.pp_mac
    t.dst kind (String.length t.payload)
