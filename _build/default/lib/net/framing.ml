let encode segments =
  let buf = Stdlib.Buffer.create 64 in
  Dk_util.Varint.write buf (List.length segments);
  List.iter (fun s -> Dk_util.Varint.write buf (String.length s)) segments;
  List.iter (Stdlib.Buffer.add_string buf) segments;
  Stdlib.Buffer.contents buf

let encode_sga sga =
  encode (List.map Dk_mem.Buffer.to_string (Dk_mem.Sga.segments sga))

let frame_overhead segments =
  Dk_util.Varint.encoded_size (List.length segments)
  + List.fold_left
      (fun acc s -> acc + Dk_util.Varint.encoded_size (String.length s))
      0 segments

type decoder = {
  mutable pending : string; (* undecoded stream bytes *)
}

let create () = { pending = "" }

let feed t s = if String.length s > 0 then t.pending <- t.pending ^ s

let buffered t = String.length t.pending

(* Try to decode one message from the head of [pending]. *)
let next t =
  let b = Bytes.unsafe_of_string t.pending in
  match Dk_util.Varint.read b 0 with
  | None -> None
  | Some (nsegs, used0) ->
      if nsegs < 0 || nsegs > 1 lsl 16 then failwith "framing: bad segment count"
      else begin
        (* Decode all segment lengths. *)
        let rec lengths i off acc =
          if i = nsegs then Some (List.rev acc, off)
          else
            match Dk_util.Varint.read b off with
            | None -> None
            | Some (len, used) ->
                if len < 0 then failwith "framing: bad segment length"
                else lengths (i + 1) (off + used) (len :: acc)
        in
        match lengths 0 used0 [] with
        | None -> None
        | Some (lens, header) ->
            let total = List.fold_left ( + ) 0 lens in
            if String.length t.pending < header + total then None
            else begin
              let pos = ref header in
              let segs =
                List.map
                  (fun len ->
                    let s = String.sub t.pending !pos len in
                    pos := !pos + len;
                    s)
                  lens
              in
              t.pending <-
                String.sub t.pending !pos (String.length t.pending - !pos);
              Some segs
            end
      end
