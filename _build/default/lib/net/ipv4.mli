(** IPv4 header codec (20-byte header, no options) with header
    checksum. *)

type proto = Tcp | Udp | Unknown of int

type t = {
  src : Addr.ip;
  dst : Addr.ip;
  proto : proto;
  ttl : int;
  ident : int;
  payload : string;
}

val header_size : int
val encode : t -> string

val decode : string -> (t, string) result
(** Rejects short packets, bad versions and checksum mismatches. *)

val pseudo_header_sum : src:Addr.ip -> dst:Addr.ip -> proto:int -> len:int -> int
(** Partial one's-complement sum of the TCP/UDP pseudo header, to fold
    into transport checksums. *)
