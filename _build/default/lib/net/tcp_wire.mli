(** TCP segment codec: 20-byte header (no options) with pseudo-header
    checksum. Sequence numbers are full 32-bit values; comparisons that
    must respect wraparound live in {!Tcp}. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** 32-bit *)
  ack_seq : int;
  flags : flags;
  window : int;
  payload : string;
}

val header_size : int
val no_flags : flags

val encode : src_ip:Addr.ip -> dst_ip:Addr.ip -> t -> string
val decode : src_ip:Addr.ip -> dst_ip:Addr.ip -> string -> (t, string) result

val pp : Format.formatter -> t -> unit
