(** Big-endian byte accessors shared by all header codecs. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
(** 32-bit value in an OCaml int (always non-negative on 64-bit). *)

val set_u32 : bytes -> int -> int -> unit
val get_u48 : bytes -> int -> int
val set_u48 : bytes -> int -> int -> unit
