lib/net/tcp_wire.mli: Addr Format
