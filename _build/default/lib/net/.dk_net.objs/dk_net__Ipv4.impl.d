lib/net/ipv4.ml: Addr Bytes Dk_util String Wire
