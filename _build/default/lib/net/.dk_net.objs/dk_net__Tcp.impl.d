lib/net/tcp.ml: Addr Bytes Dk_sim Dk_util Int64 List String Tcp_wire
