lib/net/stack.ml: Addr Arp Dk_device Dk_sim Eth Hashtbl Ipv4 Option String Tcp Tcp_wire Udp
