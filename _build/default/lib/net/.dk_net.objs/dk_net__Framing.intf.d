lib/net/framing.mli: Dk_mem
