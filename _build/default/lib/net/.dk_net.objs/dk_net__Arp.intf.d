lib/net/arp.mli: Addr
