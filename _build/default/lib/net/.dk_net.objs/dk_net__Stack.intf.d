lib/net/stack.mli: Addr Dk_device Dk_sim Tcp
