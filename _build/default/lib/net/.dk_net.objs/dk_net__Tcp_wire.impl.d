lib/net/tcp_wire.ml: Bytes Dk_util Format Ipv4 String Wire
