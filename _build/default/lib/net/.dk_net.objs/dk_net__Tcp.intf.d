lib/net/tcp.mli: Addr Dk_sim Tcp_wire
