lib/net/eth.ml: Addr Bytes Format Printf String Wire
