lib/net/arp.ml: Addr Bytes Hashtbl List String Wire
