lib/net/udp.ml: Bytes Dk_util Ipv4 String Wire
