lib/net/wire.mli:
