lib/net/framing.ml: Bytes Dk_mem Dk_util List Stdlib String
