lib/net/udp.mli: Addr
