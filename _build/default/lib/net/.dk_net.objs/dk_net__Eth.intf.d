lib/net/eth.mli: Addr Format
