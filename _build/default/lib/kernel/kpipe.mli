(** Kernel pipe object: a bounded byte stream with no message
    boundaries — the abstraction §3.2 criticises ("UNIX pipes force
    applications to operate on streams of data"). Costs (syscall, copy)
    are charged by the {!Posix} layer that wraps it in file
    descriptors. *)

type t

val create : ?capacity:int -> unit -> t
val write : t -> string -> int
(** Bytes accepted ([0] when full — EAGAIN). *)

val read : t -> int -> string
(** Up to [n] bytes; [""] when empty. Message boundaries are lost. *)

val readable : t -> int
val writable : t -> int
val close_write : t -> unit
val write_closed : t -> bool
val eof : t -> bool
(** True when the write end is closed and the buffer is drained. *)
