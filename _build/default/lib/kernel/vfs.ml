type error = [ `No_such_file | `Exists | `Device_busy ]

type file = {
  mutable size : int;
  (* file block index -> device lba *)
  blocks : (int, int) Hashtbl.t;
  (* authoritative contents; the device holds the same bytes and is
     consulted on reads for latency realism *)
  mutable shadow : bytes;
  mutable pending_writes : int;
  mutable fsync_waiters : (unit -> unit) list;
}

(* What to do when a device completion for [wr_id] arrives. *)
type pending =
  | Write_part of { file : file; mutable remaining : int ref; finish : unit -> unit }
  | Read_part of {
      dst : bytes;
      dst_off : int;
      src_off : int;
      len : int;
      mutable remaining : int ref;
      finish : unit -> unit;
    }

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  block : Dk_device.Block.t;
  files : (string, file) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_wr : int;
  mutable next_lba : int;
  mutable syscalls : int;
}

let create ~engine ~cost ~block () =
  let t =
    {
      engine;
      cost;
      block;
      files = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      next_wr = 1;
      next_lba = 0;
      syscalls = 0;
    }
  in
  Dk_device.Block.set_cq_notify block (fun () ->
      let rec drain () =
        match Dk_device.Block.poll_cq block with
        | None -> ()
        | Some c ->
            (match Hashtbl.find_opt t.pending c.Dk_device.Block.wr_id with
            | None -> ()
            | Some p ->
                Hashtbl.remove t.pending c.Dk_device.Block.wr_id;
                (match p with
                | Write_part { file; remaining; finish } ->
                    decr remaining;
                    if !remaining = 0 then begin
                      file.pending_writes <- file.pending_writes - 1;
                      let waiters = file.fsync_waiters in
                      if file.pending_writes = 0 then begin
                        file.fsync_waiters <- [];
                        List.iter (fun w -> w ()) (List.rev waiters)
                      end;
                      finish ()
                    end
                | Read_part { dst; dst_off; src_off; len; remaining; finish } ->
                    (match c.Dk_device.Block.data with
                    | Some data when c.Dk_device.Block.status = `Ok ->
                        Bytes.blit_string data src_off dst dst_off len
                    | Some _ | None -> ());
                    decr remaining;
                    if !remaining = 0 then finish ()));
            drain ()
      in
      drain ());
  t

let charge_syscall t =
  t.syscalls <- t.syscalls + 1;
  Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.syscall

let charge_vfs t = Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.vfs_overhead

let creat t path =
  charge_syscall t;
  charge_vfs t;
  if Hashtbl.mem t.files path then Error `Exists
  else begin
    Hashtbl.replace t.files path
      {
        size = 0;
        blocks = Hashtbl.create 8;
        shadow = Bytes.create 0;
        pending_writes = 0;
        fsync_waiters = [];
      };
    Ok ()
  end

let exists t path = Hashtbl.mem t.files path

let size t path =
  Option.map (fun f -> f.size) (Hashtbl.find_opt t.files path)

let unlink t path =
  charge_syscall t;
  charge_vfs t;
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    Ok ()
  end
  else Error `No_such_file

let fresh_wr t =
  let id = t.next_wr in
  t.next_wr <- t.next_wr + 1;
  id

let lba_for t file idx =
  match Hashtbl.find_opt file.blocks idx with
  | Some lba -> lba
  | None ->
      let lba = t.next_lba in
      t.next_lba <- t.next_lba + 1;
      Hashtbl.replace file.blocks idx lba;
      lba

let ensure_shadow file n =
  if Bytes.length file.shadow < n then begin
    let grown = Bytes.make (max n (2 * Bytes.length file.shadow)) '\000' in
    Bytes.blit file.shadow 0 grown 0 (Bytes.length file.shadow);
    file.shadow <- grown
  end

(* Wake the caller: completion delivery costs a context switch
   (interrupt-driven I/O), unlike a polled completion queue. *)
let complete t k v =
  Dk_sim.Engine.consume t.engine t.cost.Dk_sim.Cost.context_switch;
  k v

let write t ~path ~off data k =
  charge_syscall t;
  charge_vfs t;
  (* user -> kernel copy *)
  Dk_sim.Engine.consume t.engine
    (Dk_sim.Cost.copy_ns t.cost (String.length data));
  match Hashtbl.find_opt t.files path with
  | None -> complete t k (Error `No_such_file)
  | Some file ->
      let len = String.length data in
      if len = 0 then complete t k (Ok 0)
      else begin
        let bs = Dk_device.Block.block_size t.block in
        ensure_shadow file (off + len);
        Bytes.blit_string data 0 file.shadow off len;
        file.size <- max file.size (off + len);
        let first_block = off / bs and last_block = (off + len - 1) / bs in
        let nblocks = last_block - first_block + 1 in
        let remaining = ref nblocks in
        file.pending_writes <- file.pending_writes + 1;
        let finish () = complete t k (Ok len) in
        let failed = ref false in
        for idx = first_block to last_block do
          if not !failed then begin
            let lba = lba_for t file idx in
            let start = idx * bs in
            let chunk_len = min bs (max 0 (file.size - start)) in
            let chunk = Bytes.sub_string file.shadow start chunk_len in
            let wr = fresh_wr t in
            Hashtbl.replace t.pending wr
              (Write_part { file; remaining; finish });
            if not (Dk_device.Block.submit_write t.block ~wr_id:wr ~lba chunk)
            then begin
              Hashtbl.remove t.pending wr;
              failed := true
            end
          end
        done;
        if !failed then begin
          (* Roll back the accounting for unsubmitted parts and fail. *)
          file.pending_writes <- file.pending_writes - 1;
          complete t k (Error `Device_busy)
        end
      end

let read t ~path ~off ~len k =
  charge_syscall t;
  charge_vfs t;
  match Hashtbl.find_opt t.files path with
  | None -> complete t k (Error `No_such_file)
  | Some file ->
      let len = max 0 (min len (file.size - off)) in
      if len = 0 then complete t k (Ok "")
      else begin
        let bs = Dk_device.Block.block_size t.block in
        let dst = Bytes.create len in
        let first_block = off / bs and last_block = (off + len - 1) / bs in
        let nblocks = last_block - first_block + 1 in
        let remaining = ref nblocks in
        let finish () =
          (* kernel -> user copy on return *)
          Dk_sim.Engine.consume t.engine (Dk_sim.Cost.copy_ns t.cost len);
          complete t k (Ok (Bytes.unsafe_to_string dst))
        in
        let failed = ref false in
        for idx = first_block to last_block do
          if not !failed then begin
            let lba = lba_for t file idx in
            let block_start = idx * bs in
            let lo = max off block_start in
            let hi = min (off + len) (block_start + bs) in
            let wr = fresh_wr t in
            Hashtbl.replace t.pending wr
              (Read_part
                 {
                   dst;
                   dst_off = lo - off;
                   src_off = lo - block_start;
                   len = hi - lo;
                   remaining;
                   finish;
                 });
            if not (Dk_device.Block.submit_read t.block ~wr_id:wr ~lba) then begin
              Hashtbl.remove t.pending wr;
              failed := true
            end
          end
        done;
        if !failed then complete t k (Error `Device_busy)
      end

let fsync t ~path k =
  charge_syscall t;
  match Hashtbl.find_opt t.files path with
  | None -> complete t k (Error `No_such_file)
  | Some file ->
      if file.pending_writes = 0 then complete t k (Ok ())
      else
        file.fsync_waiters <-
          (fun () -> complete t k (Ok ())) :: file.fsync_waiters

let syscalls t = t.syscalls
