(** mTCP-style user-level TCP with a POSIX-ish interface (§6).

    mTCP removes the kernel from the data path but keeps the legacy
    abstraction: data is still copied at the API boundary, and packets
    are processed in batches to amortise per-packet costs. Batching
    helps throughput but *adds* latency — the paper's observation that
    mTCP's "latency was higher than the Linux kernel's". Here each
    direction pays [Cost.mtcp_batch_delay] before data moves between
    the application and the underlying user-level stack, plus POSIX
    copy costs. *)

type t
type conn

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  stack:Dk_net.Stack.t ->
  unit ->
  t
(** [stack] keeps its user-level per-packet cost: mTCP's stack runs in
    user space. *)

val listen :
  t -> port:int -> on_accept:(conn -> unit) -> (unit, [ `In_use ]) result

val connect : t -> dst:Dk_net.Addr.endpoint -> conn

val send : conn -> string -> int
(** Copies into the batch buffer; flushed to the wire one batch delay
    later. Returns bytes accepted. *)

val recv_ready : conn -> int
val recv : conn -> int -> string

val set_on_connect : conn -> (unit -> unit) -> unit
val set_on_readable : conn -> (unit -> unit) -> unit
val close : conn -> unit

val bytes_copied : t -> int
