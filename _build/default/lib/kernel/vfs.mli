(** Simulated kernel file system over the block device.

    Models the traditional storage path of Figure 1: every operation
    pays a syscall, VFS/page-cache bookkeeping ([Cost.vfs_overhead]) and
    a user/kernel copy of the data, then goes to the device and waits
    for the interrupt-driven completion. Contrast with the Demikernel
    file queue, which pays a doorbell and polls.

    Operations are asynchronous: completion continuations run from the
    simulation event loop when the device finishes. *)

type t

type error = [ `No_such_file | `Exists | `Device_busy ]

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  block:Dk_device.Block.t ->
  unit ->
  t

val creat : t -> string -> (unit, error) result
val exists : t -> string -> bool
val size : t -> string -> int option
val unlink : t -> string -> (unit, error) result

val write :
  t -> path:string -> off:int -> string -> ((int, error) result -> unit) -> unit
(** Write bytes at an offset (extending the file as needed); the
    continuation receives the byte count once the device commits. *)

val read :
  t -> path:string -> off:int -> len:int -> ((string, error) result -> unit) -> unit
(** Read up to [len] bytes at [off] (short reads at end of file). *)

val fsync : t -> path:string -> ((unit, error) result -> unit) -> unit
(** Barrier: completes when all previously issued writes for the file
    have completed. *)

val syscalls : t -> int
(** Syscall crossings charged so far (three per write/read: enter,
    block, return — folded into one charge plus a context switch). *)
