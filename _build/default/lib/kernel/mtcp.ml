module Stack = Dk_net.Stack
module Tcp = Dk_net.Tcp

type t = {
  engine : Dk_sim.Engine.t;
  cost : Dk_sim.Cost.t;
  stack : Stack.t;
  mutable bytes_copied : int;
}

type conn = {
  owner : t;
  tcp : Tcp.conn;
  rx : Dk_util.Ring.t; (* batch-delivered received bytes *)
  mutable tx : string; (* bytes awaiting the next flush batch *)
  mutable flush_scheduled : bool;
  mutable on_connect : unit -> unit;
  mutable on_readable : unit -> unit;
}

let create ~engine ~cost ~stack () =
  { engine; cost; stack; bytes_copied = 0 }

let charge_copy t n =
  t.bytes_copied <- t.bytes_copied + n;
  Dk_sim.Engine.consume t.engine (Dk_sim.Cost.copy_ns t.cost n)

let batch t = t.cost.Dk_sim.Cost.mtcp_batch_delay

(* Move whatever the stack has into the app-visible ring, one batch
   delay after it arrived. *)
let wire conn =
  let t = conn.owner in
  Tcp.set_on_readable conn.tcp (fun () ->
      ignore
        (Dk_sim.Engine.after t.engine (batch t) (fun () ->
             let avail = Tcp.recv_ready conn.tcp in
             if avail > 0 then begin
               let data = Tcp.recv conn.tcp avail in
               ignore (Dk_util.Ring.write_string conn.rx data);
               conn.on_readable ()
             end)));
  Tcp.set_on_writable conn.tcp (fun () ->
      if String.length conn.tx > 0 then begin
        let n = Tcp.send conn.tcp conn.tx in
        conn.tx <- String.sub conn.tx n (String.length conn.tx - n)
      end);
  Tcp.set_on_connect conn.tcp (fun () -> conn.on_connect ())

let make owner tcp =
  let conn =
    {
      owner;
      tcp;
      rx = Dk_util.Ring.create (1 lsl 20);
      tx = "";
      flush_scheduled = false;
      on_connect = (fun () -> ());
      on_readable = (fun () -> ());
    }
  in
  wire conn;
  conn

let listen t ~port ~on_accept =
  Stack.tcp_listen t.stack ~port ~on_accept:(fun tcp ->
      on_accept (make t tcp))

let connect t ~dst = make t (Stack.tcp_connect t.stack ~dst)

let rec schedule_flush conn =
  if not conn.flush_scheduled then begin
    conn.flush_scheduled <- true;
    let t = conn.owner in
    ignore
      (Dk_sim.Engine.after t.engine (batch t) (fun () ->
           conn.flush_scheduled <- false;
           if String.length conn.tx > 0 then begin
             let n = Tcp.send conn.tcp conn.tx in
             conn.tx <- String.sub conn.tx n (String.length conn.tx - n);
             if String.length conn.tx > 0 then schedule_flush conn
           end))
  end

let send conn data =
  charge_copy conn.owner (String.length data);
  conn.tx <- conn.tx ^ data;
  schedule_flush conn;
  String.length data

let recv_ready conn = Dk_util.Ring.length conn.rx

let recv conn n =
  let n = min n (recv_ready conn) in
  let buf = Bytes.create n in
  let got = Dk_util.Ring.read conn.rx buf 0 n in
  charge_copy conn.owner got;
  Bytes.sub_string buf 0 got

let set_on_connect conn f = conn.on_connect <- f
let set_on_readable conn f = conn.on_readable <- f
let close conn = Tcp.close conn.tcp
let bytes_copied t = t.bytes_copied
