(** POSIX-style kernel interface: file descriptors, non-blocking
    sockets, pipes and epoll — the legacy abstraction the Demikernel
    replaces (§3.2).

    Every call charges one syscall crossing; reads and writes charge a
    user/kernel copy of the bytes moved (the copy §3.2 calls "both
    inefficient and unnecessary"); socket data additionally pays the
    kernel network stack per segment (in the underlying kernel-flavored
    {!Dk_net.Stack}). All calls are non-blocking, as in a typical
    epoll-driven server. *)

type t
type fd = int

type error =
  [ `Bad_fd | `Again | `In_use | `Not_supported | `Connection_closed ]

type stats = { syscalls : int; bytes_copied : int }

val create :
  engine:Dk_sim.Engine.t ->
  cost:Dk_sim.Cost.t ->
  stack:Dk_net.Stack.t ->
  unit ->
  t
(** [stack] should be created with
    [~pkt_cost:cost.kernel_net_per_pkt] to model the in-kernel stack. *)

(** {2 Sockets} *)

val socket : t -> fd

val listen : t -> fd -> port:int -> (unit, error) result

val accept : t -> fd -> (fd, error) result
(** [`Again] when no pending connection. *)

val connect : t -> fd -> dst:Dk_net.Addr.endpoint -> (unit, error) result
(** Starts a non-blocking connect; completion is observable via
    {!connected} or epoll [`Out] readiness. *)

val connected : t -> fd -> bool

val read : t -> fd -> bytes -> int -> int -> (int, error) result
(** [read t fd buf off len]: [Ok 0] means EOF; [`Again] means no data
    yet. Charges syscall + demux + copy of the bytes returned. *)

val write : t -> fd -> string -> (int, error) result
(** Partial writes happen under backpressure; [`Again] when the socket
    buffer is full. *)

val close : t -> fd -> unit

(** {2 Pipes} *)

val pipe : t -> fd * fd
(** (read end, write end). *)

(** {2 Epoll}

    Level-triggered readiness. [epoll_wait] charges one syscall and
    returns currently-ready interests; the "wakes every waiting thread"
    behaviour of shared epoll sets is modelled in [Dk_sched.Worker_pool]
    on top of this. *)

type event = [ `In | `Out ]

val epoll_create : t -> fd
val epoll_add : t -> fd -> fd -> event list -> (unit, error) result
val epoll_del : t -> fd -> fd -> unit
val epoll_wait : t -> fd -> max:int -> (fd * event) list

val epoll_wait_block :
  t -> fd -> max:int -> ((fd * event) list -> unit) -> unit
(** Blocking epoll_wait: if something is ready the continuation runs
    immediately (one syscall); otherwise the calling thread sleeps and
    is woken — one context switch — when a registered socket becomes
    ready. Only socket events (readable/writable/accept/close) wake a
    blocked waiter. *)

val readable : t -> fd -> bool
val writable : t -> fd -> bool

val stats : t -> stats
