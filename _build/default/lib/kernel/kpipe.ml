type t = { ring : Dk_util.Ring.t; mutable wclosed : bool }

let create ?(capacity = 65536) () =
  { ring = Dk_util.Ring.create capacity; wclosed = false }

let write t data =
  if t.wclosed then invalid_arg "Kpipe.write: write end closed"
  else Dk_util.Ring.write_string t.ring data

let read t n =
  let n = min n (Dk_util.Ring.length t.ring) in
  let buf = Bytes.create n in
  let got = Dk_util.Ring.read t.ring buf 0 n in
  Bytes.sub_string buf 0 got

let readable t = Dk_util.Ring.length t.ring
let writable t = Dk_util.Ring.available t.ring
let close_write t = t.wclosed <- true
let write_closed t = t.wclosed
let eof t = t.wclosed && Dk_util.Ring.is_empty t.ring
