lib/kernel/posix.ml: Bytes Dk_net Dk_sim Hashtbl Kpipe List Queue String
