lib/kernel/posix.mli: Dk_net Dk_sim
