lib/kernel/kpipe.mli:
