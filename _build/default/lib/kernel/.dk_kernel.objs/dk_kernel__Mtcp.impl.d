lib/kernel/mtcp.ml: Bytes Dk_net Dk_sim Dk_util String
