lib/kernel/vfs.mli: Dk_device Dk_sim
