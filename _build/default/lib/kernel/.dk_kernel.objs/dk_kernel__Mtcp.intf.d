lib/kernel/mtcp.mli: Dk_net Dk_sim
