lib/kernel/kpipe.ml: Bytes Dk_util
