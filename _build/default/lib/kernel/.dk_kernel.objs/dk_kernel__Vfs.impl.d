lib/kernel/vfs.ml: Bytes Dk_device Dk_sim Hashtbl List Option String
