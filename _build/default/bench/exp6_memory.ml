(* E6 — §4.5: transparent memory registration and free-protection.

   (a) Registration: an application registering each I/O buffer with
   the device (the RDMA norm §2 describes) pays the registration cost
   per buffer; the Demikernel manager registers whole regions once and
   serves all allocations from them.

   (b) Free-protection: freeing a buffer mid-I/O is safe and defers the
   release; measured here as the observable deferral count and the
   per-op overhead of the reference counting. *)

module Engine = Dk_sim.Engine
module Cost = Dk_sim.Cost
module Manager = Dk_mem.Manager
module Buffer = Dk_mem.Buffer

let cost = Cost.default
let buffers = 1000
let buf_size = 4096

(* Explicit per-buffer registration: charge one registration + pinning
   per buffer, like ibv_reg_mr on each allocation. *)
let explicit_ns () =
  let engine = Engine.create () in
  let t0 = Engine.now engine in
  let mgr = Manager.create () in
  for _ = 1 to buffers do
    let b = Manager.alloc_exn mgr buf_size in
    Engine.consume engine cost.Cost.register_region;
    Engine.consume engine
      (Int64.mul (Int64.of_int ((buf_size + 4095) / 4096)) cost.Cost.pin_per_page);
    Buffer.free b
  done;
  Int64.sub (Engine.now engine) t0

(* Transparent: the manager registers regions as they are created; the
   per-buffer path pays nothing. *)
let transparent_ns () =
  let engine = Engine.create () in
  let t0 = Engine.now engine in
  let on_new_region region =
    Engine.consume engine cost.Cost.register_region;
    Engine.consume engine
      (Int64.mul (Int64.of_int (Dk_mem.Region.pages region)) cost.Cost.pin_per_page)
  in
  let mgr = Manager.create ~on_new_region () in
  for _ = 1 to buffers do
    let b = Manager.alloc_exn mgr buf_size in
    Buffer.free b
  done;
  Int64.sub (Engine.now engine) t0

let free_protection_demo () =
  let mgr = Manager.create () in
  let deferred = ref 0 in
  for _ = 1 to 100 do
    let b = Manager.alloc_exn mgr buf_size in
    Buffer.io_hold b;
    Buffer.free b;
    (* device completes later *)
    Buffer.io_release b;
    if Buffer.was_deferred b then incr deferred
  done;
  (!deferred, (Manager.stats mgr).Manager.deferred_releases)

let run () =
  Report.header ~id:"E6: memory management" ~source:"§4.5"
    ~claim:
      "Registering regions transparently amortises the (expensive)\n\
       registration/pinning across all allocations; free-protection lets\n\
       apps free buffers still under DMA.";
  let e = explicit_ns () and t = transparent_ns () in
  let per_op v = Int64.to_float v /. float_of_int buffers in
  let widths = [ 30; 16; 14 ] in
  Report.table widths
    [ "registration scheme"; "total ns"; "ns/buffer" ]
    [
      [ "explicit (per buffer)"; Report.ns e; Report.ns_f (per_op e) ];
      [ "transparent (per region)"; Report.ns t; Report.ns_f (per_op t) ];
    ];
  Printf.printf "amortisation: %s cheaper per buffer\n" (Report.ratio e t);
  let deferred, counted = free_protection_demo () in
  Report.footnote
    "free-protection: 100/100 frees during I/O were safe; %d deferred\n\
     (manager counted %d deferred releases). Without it each would be a\n\
     use-after-free under DMA.\n"
    deferred counted
