(* E3 — §3.2 copy claim: "copying a 4k page takes 1µs on a 4Ghz CPU,
   adding 50% overhead to Redis"'s ~2µs request. GET round trips with
   growing value sizes on the POSIX path (two boundary copies per
   datum) vs the Demikernel zero-copy path, plus the direct
   copy-vs-app-work accounting the paper states. *)

module Setup = Dk_apps.Sim_setup
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Kv_posix = Dk_apps.Kv_posix
module Demi = Demikernel.Demi
module Cost = Dk_sim.Cost
module H = Dk_sim.Histogram

let ops = 60

let demi_get_p50 value_size =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let kv = Kv.create (Demi.manager db) in
  ignore (Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
  match
    Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 1) ~ops
      ~keys:8 ~value_size ~read_fraction:1.0 ()
  with
  | Ok s -> H.quantile s.Kv_app.latency 0.5
  | Error _ -> failwith "demi kv failed"

let posix_get_p50 value_size =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  let kv = Kv.create (Dk_mem.Manager.create ()) in
  ignore
    (Kv_posix.start_server ~posix:pb ~cost:duo.Setup.cost
       ~engine:duo.Setup.engine ~port:1 ~kv);
  match
    Kv_posix.run_client ~posix:pa ~cost:duo.Setup.cost ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 1) ~ops ~keys:8 ~value_size
      ~read_fraction:1.0 ()
  with
  | Ok s -> H.quantile s.Kv_app.latency 0.5
  | Error _ -> failwith "posix kv failed"

let run () =
  Report.header ~id:"E3: zero-copy I/O" ~source:"§3.2"
    ~claim:
      "A 4 KB copy costs ~1 us on a 4 GHz CPU — ~50% overhead on a 2 us Redis\n\
       read. POSIX pays it at every boundary; Demikernel queues never copy.";
  let c = Cost.default in
  Printf.printf "cost model: copy(4096 B) = %Ld ns, app request = %Ld ns -> %.0f%% overhead\n\n"
    (Cost.copy_ns c 4096) c.Cost.app_request
    (Int64.to_float (Cost.copy_ns c 4096) /. Int64.to_float c.Cost.app_request *. 100.0);
  let widths = [ 9; 16; 16; 9 ] in
  let rows =
    List.map
      (fun size ->
        let p = posix_get_p50 size and d = demi_get_p50 size in
        [ string_of_int size; Report.ns p; Report.ns d; Report.ratio p d ])
      [ 64; 512; 4096; 16384; 65536 ]
  in
  Report.table widths
    [ "value(B)"; "posix p50(ns)"; "demi p50(ns)"; "speedup" ]
    rows;
  Report.footnote
    "the gap widens with value size: copy cost is linear in bytes, the\n\
     zero-copy path is not.\n"
