(* Minimal fixed-width table printer for experiment output. *)

let hr width = print_endline (String.make width '-')

let header ~id ~source ~claim =
  print_newline ();
  hr 78;
  Printf.printf "%s  [%s]\n" id source;
  Printf.printf "%s\n" claim;
  hr 78

let row widths cells =
  let pad w s =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  print_endline (String.concat "  " (List.map2 pad widths cells))

let table widths head rows =
  row widths head;
  row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (row widths) rows

let ns v = Printf.sprintf "%Ld" v
let ns_f v = Printf.sprintf "%.0f" v
let ratio a b = Printf.sprintf "%.1fx" (Int64.to_float a /. Int64.to_float b)

let kops_per_sec ops elapsed_ns =
  if Int64.compare elapsed_ns 0L <= 0 then "-"
  else
    Printf.sprintf "%.0f" (float_of_int ops /. (Int64.to_float elapsed_ns /. 1e9) /. 1000.0)

let footnote fmt = Printf.printf fmt
