(* E5 — §4.4: "wait wakes exactly one thread on each pop completion, so
   there are never wasted wake ups for threads with no data to
   process", and wait returns the data directly instead of requiring a
   second syscall. Thundering-herd epoll vs per-token wakeups across
   worker counts. *)

module Worker_pool = Dk_sched.Worker_pool
module Engine = Dk_sim.Engine
module H = Dk_sim.Histogram

let jobs = 2000

let run_mode mode workers =
  let engine = Engine.create () in
  Worker_pool.run ~engine ~cost:Dk_sim.Cost.default ~mode ~workers ~jobs
    ~mean_interarrival_ns:3000.0 ~service_ns:2000L ()

let run () =
  Report.header ~id:"E5: wakeup precision" ~source:"§4.4"
    ~claim:
      "epoll wakes every waiting thread per event (and needs a second\n\
       syscall for the data); each qtoken completion wakes exactly one.";
  let widths = [ 9; 14; 14; 15; 15 ] in
  let rows =
    List.map
      (fun workers ->
        let herd = run_mode `Epoll_herd workers in
        let tok = run_mode `Qtoken workers in
        [
          string_of_int workers;
          string_of_int herd.Worker_pool.wasted_wakeups;
          string_of_int tok.Worker_pool.wasted_wakeups;
          Report.ns (H.quantile herd.Worker_pool.dispatch_latency 0.99);
          Report.ns (H.quantile tok.Worker_pool.dispatch_latency 0.99);
        ])
      [ 1; 4; 16; 64 ]
  in
  Report.table widths
    [ "workers"; "herd wasted"; "token wasted"; "herd p99(ns)"; "token p99(ns)" ]
    rows;
  Report.footnote "%d jobs per cell; Poisson arrivals at 1/3000 ns.\n" jobs
