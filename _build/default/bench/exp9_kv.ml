(* E9 — the Redis scenario end-to-end (§3.2's motivating application):
   a KV store under a Zipf 90/10 GET/SET mix, on the POSIX kernel path
   vs Demikernel queues. Throughput and tail latency. *)

module Setup = Dk_apps.Sim_setup
module Kv = Dk_apps.Kv
module Kv_app = Dk_apps.Kv_app
module Kv_posix = Dk_apps.Kv_posix
module Demi = Demikernel.Demi
module Posix = Dk_kernel.Posix
module H = Dk_sim.Histogram

let ops = 1000
let keys = 200
let value_size = 1024

let demi_run () =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  let kv = Kv.create (Demi.manager db) in
  ignore (Kv_app.start_tcp_server ~demi:db ~port:1 ~kv);
  match
    Kv_app.run_tcp_client ~demi:da ~dst:(Setup.endpoint duo.Setup.b 1) ~ops
      ~keys ~value_size ~read_fraction:0.9 ()
  with
  | Ok s -> (s, 0.0, 0.0)
  | Error _ -> failwith "demi kv failed"

let posix_run () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  let kv = Kv.create (Dk_mem.Manager.create ()) in
  ignore
    (Kv_posix.start_server ~posix:pb ~cost:duo.Setup.cost
       ~engine:duo.Setup.engine ~port:1 ~kv);
  let sys0 = (Posix.stats pb).Posix.syscalls in
  let copy0 = (Posix.stats pb).Posix.bytes_copied in
  match
    Kv_posix.run_client ~posix:pa ~cost:duo.Setup.cost ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 1) ~ops ~keys ~value_size
      ~read_fraction:0.9 ()
  with
  | Ok s ->
      let per_op n = float_of_int n /. float_of_int (ops + keys) in
      ( s,
        per_op ((Posix.stats pb).Posix.syscalls - sys0),
        per_op ((Posix.stats pb).Posix.bytes_copied - copy0) )
  | Error _ -> failwith "posix kv failed"

let describe name (s : Kv_app.client_stats) syscalls copied =
  [
    name;
    Report.kops_per_sec s.Kv_app.ops s.Kv_app.elapsed_ns;
    Report.ns (H.quantile s.Kv_app.latency 0.5);
    Report.ns (H.quantile s.Kv_app.latency 0.99);
    Printf.sprintf "%.1f" syscalls;
    Printf.sprintf "%.0f" copied;
  ]

let run () =
  Report.header ~id:"E9: Redis-style KV end to end" ~source:"§3.2 (Redis example)"
    ~claim:
      "The motivating application: a key-value server whose 2 us of work per\n\
       request is dwarfed by kernel overheads on the legacy path.";
  let ds, dsys, dcopy = demi_run () in
  let ps, psys, pcopy = posix_run () in
  let widths = [ 12; 12; 10; 10; 14; 15 ] in
  Report.table widths
    [ "interface"; "kops/s"; "p50(ns)"; "p99(ns)"; "srv syscalls/op"; "srv copied B/op" ]
    [
      describe "posix" ps psys pcopy;
      describe "demikernel" ds dsys dcopy;
    ];
  Report.footnote
    "%d ops, %d keys, %d B values, 90%% GET, Zipf(0.99). Server-side\n\
     syscalls/copies are per request (demikernel: zero by construction).\n"
    ops keys value_size
