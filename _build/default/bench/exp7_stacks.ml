(* E7 — §6: "We explored mTCP but found it to be too expensive; for
   example, its latency was higher than the Linux kernel's."

   Echo RTT on three stacks: the simulated Linux kernel, an mTCP-style
   batched user-level stack behind the POSIX API, and Demikernel
   queues. The shape to reproduce: demikernel << kernel < mTCP in
   latency, even though mTCP also bypasses the kernel. *)

module Setup = Dk_apps.Sim_setup
module Echo = Dk_apps.Echo
module H = Dk_sim.Histogram

let rounds = 50
let tp_msgs = 400
let tp_window = 32
let tp_size = 64

(* Pipelined throughput: keep [tp_window] messages outstanding and
   measure completions per virtual second. *)
let kernel_throughput () =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let engine = duo.Setup.engine in
  let pa = Setup.posix_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Echo.start_posix_server ~posix:pb ~port:7);
  let module P = Dk_kernel.Posix in
  let fd = P.socket pa in
  ignore (P.connect pa fd ~dst:(Setup.endpoint duo.Setup.b 7));
  ignore (Dk_sim.Engine.run_until engine (fun () -> P.connected pa fd));
  let payload = String.make tp_size 'k' in
  let sent = ref 0 and rcvd_bytes = ref 0 in
  let buf = Bytes.create 65536 in
  let t0 = Dk_sim.Engine.now engine in
  let pump () =
    (* fill the window *)
    while !sent < tp_msgs && !sent * tp_size - !rcvd_bytes < tp_window * tp_size do
      (match P.write pa fd payload with
      | Ok n when n = tp_size -> incr sent
      | Ok _ | Error _ -> sent := tp_msgs (* backpressure stall: stop filling *))
    done;
    match P.read pa fd buf 0 65536 with
    | Ok n -> rcvd_bytes := !rcvd_bytes + n
    | Error _ -> ()
  in
  let target = tp_msgs * tp_size in
  let rec loop () =
    if !rcvd_bytes < target then begin
      pump ();
      if !rcvd_bytes < target then
        if Dk_sim.Engine.step engine then loop ()
    end
  in
  loop ();
  let elapsed = Int64.sub (Dk_sim.Engine.now engine) t0 in
  float_of_int (!rcvd_bytes / tp_size) /. (Int64.to_float elapsed /. 1e9)

let mtcp_throughput () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let ma = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a in
  let mb = Setup.mtcp_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Echo.start_mtcp_server ~mtcp:mb ~port:7);
  let module M = Dk_kernel.Mtcp in
  let conn = M.connect ma ~dst:(Setup.endpoint duo.Setup.b 7) in
  let connected = ref false in
  M.set_on_connect conn (fun () -> connected := true);
  ignore (Dk_sim.Engine.run_until engine (fun () -> !connected));
  let payload = String.make tp_size 'm' in
  let t0 = Dk_sim.Engine.now engine in
  (* mTCP batches: blast everything, drain replies *)
  for _ = 1 to tp_msgs do
    ignore (M.send conn payload)
  done;
  let rcvd = ref 0 in
  ignore
    (Dk_sim.Engine.run_until engine (fun () ->
         let avail = M.recv_ready conn in
         if avail > 0 then rcvd := !rcvd + String.length (M.recv conn avail);
         !rcvd >= tp_msgs * tp_size));
  let elapsed = Int64.sub (Dk_sim.Engine.now engine) t0 in
  float_of_int tp_msgs /. (Int64.to_float elapsed /. 1e9)

let demi_throughput () =
  let duo = Setup.two_hosts () in
  let engine = duo.Setup.engine in
  let da = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine ~cost:duo.Setup.cost duo.Setup.b () in
  ignore (Echo.start_demi_server ~demi:db ~port:7);
  let module D = Demikernel.Demi in
  let module T = Demikernel.Types in
  let qd = Result.get_ok (D.socket da `Tcp) in
  ignore (D.connect da qd ~dst:(Setup.endpoint duo.Setup.b 7));
  let payload = String.make tp_size 'd' in
  let t0 = Dk_sim.Engine.now engine in
  let done_ = ref 0 in
  (* window of pops outstanding; pushes fire-and-watch *)
  let rec pop_loop () =
    if !done_ < tp_msgs then
      match D.pop da qd with
      | Ok tok ->
          D.watch da tok (function
            | T.Popped _ ->
                incr done_;
                pop_loop ()
            | _ -> ())
      | Error _ -> ()
  in
  pop_loop ();
  for _ = 1 to tp_msgs do
    match D.push da qd (Dk_mem.Sga.of_string payload) with
    | Ok tok -> D.watch da tok (fun _ -> ())
    | Error _ -> ()
  done;
  ignore (Dk_sim.Engine.run_until engine (fun () -> !done_ >= tp_msgs));
  let elapsed = Int64.sub (Dk_sim.Engine.now engine) t0 in
  float_of_int tp_msgs /. (Int64.to_float elapsed /. 1e9)

let kernel size =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Echo.start_posix_server ~posix:pb ~port:7);
  match
    Echo.posix_rtt ~posix:pa ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h -> H.quantile h 0.5
  | Error _ -> failwith "kernel run failed"

let mtcp size =
  let duo = Setup.two_hosts () in
  let ma = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let mb = Setup.mtcp_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Echo.start_mtcp_server ~mtcp:mb ~port:7);
  let h =
    Echo.mtcp_rtt ~mtcp:ma ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  in
  H.quantile h 0.5

let demikernel size =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  ignore (Echo.start_demi_server ~demi:db ~port:7);
  match
    Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h -> H.quantile h 0.5
  | Error _ -> failwith "demi run failed"

let run () =
  Report.header ~id:"E7: network stack comparison" ~source:"§6 (related work)"
    ~claim:
      "Keeping the POSIX interface on a user-level stack (mTCP) trades\n\
       latency for throughput: batching makes its RTT *worse* than the\n\
       kernel's. Only the new interface wins both.";
  let widths = [ 9; 15; 15; 15 ] in
  let rows =
    List.map
      (fun size ->
        [
          string_of_int size;
          Report.ns (kernel size);
          Report.ns (mtcp size);
          Report.ns (demikernel size);
        ])
      [ 64; 1024; 4096 ]
  in
  Report.table widths
    [ "size(B)"; "kernel p50(ns)"; "mtcp p50(ns)"; "demi p50(ns)" ]
    rows;
  Report.footnote
    "expected order: demikernel < kernel < mtcp (mtcp pays one batching\n\
     quantum each way).\n\n";
  (* the other side of the trade: pipelined throughput *)
  let kt = kernel_throughput () in
  let mt = mtcp_throughput () in
  let dt = demi_throughput () in
  Report.table [ 12; 16 ]
    [ "stack"; "kmsgs/s (64B)" ]
    [
      [ "kernel"; Printf.sprintf "%.0f" (kt /. 1000.) ];
      [ "mtcp"; Printf.sprintf "%.0f" (mt /. 1000.) ];
      [ "demikernel"; Printf.sprintf "%.0f" (dt /. 1000.) ];
    ];
  Report.footnote
    "pipelined (%d outstanding): both user-level stacks crush the kernel on\n\
     throughput; mtcp's aggressive batching even beats demikernel on tiny\n\
     back-to-back messages - but at a 3x latency penalty vs the kernel and\n\
     ~16x vs demikernel. The latency claim (S6) is what the paper makes.\n"
    tp_window
