(* E1 — Figure 1: traditional (kernel-mediated) vs kernel-bypass data
   path. Echo round trips across message sizes, with per-operation
   syscall and copy accounting for the kernel path (the bypass path has
   none, by construction). *)

module Setup = Dk_apps.Sim_setup
module Echo = Dk_apps.Echo
module Posix = Dk_kernel.Posix
module H = Dk_sim.Histogram

let rounds = 50

let kernel_rtt size =
  let duo = Setup.two_hosts ~kernel_stack:true () in
  let pa = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a in
  let pb = Setup.posix_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b in
  ignore (Echo.start_posix_server ~posix:pb ~port:7);
  let before = (Posix.stats pa).Posix.syscalls in
  match
    Echo.posix_rtt ~posix:pa ~engine:duo.Setup.engine
      ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h ->
      let syscalls = (Posix.stats pa).Posix.syscalls - before in
      (H.quantile h 0.5, float_of_int syscalls /. float_of_int rounds,
       float_of_int (Posix.stats pa).Posix.bytes_copied /. float_of_int rounds)
  | Error _ -> failwith "kernel echo failed"

let demi_rtt size =
  let duo = Setup.two_hosts () in
  let da = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a () in
  let db = Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b () in
  ignore (Echo.start_demi_server ~demi:db ~port:7);
  match
    Echo.demi_rtt ~demi:da ~dst:(Setup.endpoint duo.Setup.b 7) ~size ~rounds
  with
  | Ok h -> H.quantile h 0.5
  | Error _ -> failwith "demi echo failed"

let run () =
  Report.header ~id:"E1: data-path architectures" ~source:"Figure 1"
    ~claim:
      "Kernel-bypass removes the OS kernel from the I/O path: echo RTT drops\n\
       by the syscall + kernel-stack + copy overheads; the bypass path makes\n\
       zero syscalls.";
  let widths = [ 8; 14; 14; 9; 14; 14 ] in
  let rows =
    List.map
      (fun size ->
        let krtt, ksys, kcopy = kernel_rtt size in
        let drtt = demi_rtt size in
        [
          string_of_int size;
          Report.ns krtt;
          Report.ns drtt;
          Report.ratio krtt drtt;
          Printf.sprintf "%.1f" ksys;
          Printf.sprintf "%.0f" kcopy;
        ])
      [ 64; 512; 1024; 4096; 16384 ]
  in
  Report.table widths
    [ "size(B)"; "kernel p50(ns)"; "bypass p50(ns)"; "speedup";
      "k.syscalls/op"; "k.copied B/op" ]
    rows;
  Report.footnote
    "bypass syscalls/op = 0 and copied bytes/op = 0 on the data path by design.\n"
