bench/exp9_kv.ml: Demikernel Dk_apps Dk_kernel Dk_mem Dk_sim Printf Report
