bench/exp4_atomicity.ml: Demikernel Dk_kernel Dk_mem Dk_net Dk_sim List Printf Report String
