bench/exp7_stacks.ml: Bytes Demikernel Dk_apps Dk_kernel Dk_mem Dk_sim Int64 List Printf Report Result String
