bench/exp12_storage_offload.ml: Demikernel Dk_device Dk_mem Dk_sim Int64 Report Result String
