bench/exp1_datapath.ml: Dk_apps Dk_kernel Dk_sim List Printf Report
