bench/exp8_offload.ml: Demikernel Dk_apps Dk_device Dk_mem Dk_sim Int64 List Printf Report Result String
