bench/exp11_onesided.ml: Demikernel Dk_device Dk_mem Dk_sim Int64 Printf Report Result String
