bench/exp3_zerocopy.ml: Demikernel Dk_apps Dk_mem Dk_sim Int64 List Printf Report
