bench/micro.ml: Analyze Bechamel Benchmark Bytes Demikernel Dk_apps Dk_mem Dk_net Dk_sim Dk_util Hashtbl Instance Int64 List Measure Printf Report Result Staged String Test Time Toolkit
