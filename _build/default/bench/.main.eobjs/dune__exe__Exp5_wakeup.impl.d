bench/exp5_wakeup.ml: Dk_sched Dk_sim List Report
