bench/exp2_categories.ml: Demikernel Dk_apps Dk_device Dk_mem Dk_net Dk_sim Int64 Report Result String
