bench/exp10_storage.ml: Demikernel Dk_device Dk_kernel Dk_mem Dk_sim Int64 Report Result String
