bench/main.mli:
