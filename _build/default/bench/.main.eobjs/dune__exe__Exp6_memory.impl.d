bench/exp6_memory.ml: Dk_mem Dk_sim Int64 Printf Report
