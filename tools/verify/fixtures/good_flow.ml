(* Flow shapes that are legal and must stay clean: ownership escapes,
   branch joins that close on every path, try_wait retry loops, watch
   callbacks freeing in-flight buffers at completion, blocking data
   path, queue composition. *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types

let must = function Ok v -> v | Error _ -> failwith "demi"
let helper _ = ()

let escapes demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd -> helper qd

let branch_close demi cond =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd ->
      if cond then must (Demi.connect demi qd ~dst:1) else ();
      must (Demi.close demi qd)

let retry_try_wait demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok -> (
      match Demi.try_wait demi tok with
      | Ok None -> ( match Demi.wait demi tok with _ -> ())
      | Ok (Some _) -> ()
      | Error _ -> ())

let inflight_closure demi qd =
  match Demi.sga_alloc demi "w" with
  | Error _ -> ()
  | Ok sga -> (
      match Demi.push demi qd sga with
      | Error _ -> ()
      | Ok tok -> Demi.watch demi tok (fun _ -> Demi.sga_free demi sga))

let blocking demi qd =
  match Demi.sga_alloc demi "b" with
  | Error _ -> ()
  | Ok sga ->
      (match Demi.blocking_push demi qd sga with _ -> ());
      Demi.sga_free demi sga

let compose demi =
  match Demi.socket demi `Udp with
  | Error _ -> ()
  | Ok qd -> (
      must (Demi.bind demi qd ~port:5);
      match Demi.filter demi qd ~f:(fun _ -> true) with
      | Ok fq -> must (Demi.close demi fq)
      | Error _ -> ())

let loop_pushes demi qd msg =
  for _ = 1 to 3 do
    match Demi.push demi qd (must (Demi.sga_alloc demi msg)) with
    | Ok tok -> ( match Demi.wait demi tok with _ -> ())
    | Error _ -> ()
  done

let deliberate_discard demi =
  let _registration_qd = must (Demi.socket demi `Udp) in
  ()
