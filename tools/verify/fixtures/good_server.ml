(* A protocol-clean server: full Figure-3 lifecycle, every result
   matched, every token redeemed exactly once, every qd closed.
   dk-verify must report nothing here. *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types

let must = function Ok v -> v | Error _ -> failwith "demi"

let serve demi ~port =
  let lqd = must (Demi.socket demi `Tcp) in
  must (Demi.bind demi lqd ~port);
  must (Demi.listen demi lqd);
  (match Demi.accept demi lqd with
  | Ok qd ->
      (match Demi.pop demi qd with
      | Ok tok -> (
          match Demi.wait demi tok with
          | Types.Popped sga -> Demi.sga_free demi sga
          | _ -> ())
      | Error _ -> ());
      must (Demi.close demi qd)
  | Error _ -> ());
  must (Demi.close demi lqd)

let client demi ~dst msg =
  let ( let* ) = Result.bind in
  let* qd = Demi.socket demi `Tcp in
  let* () = Demi.connect demi qd ~dst in
  let* sga = Demi.sga_alloc demi msg in
  (match Demi.push demi qd sga with
  | Ok tok -> ( match Demi.wait demi tok with _ -> ())
  | Error _ -> ());
  Demi.close demi qd
