(* Seeded ignored-result violations: with the kernel out of the I/O
   path, the Error constructor is the only failure report left — no
   Demi result may be discarded unexamined. *)

module Demi = Demikernel.Demi

let ignore_bind demi qd =
  ignore (Demi.bind demi qd ~port:9) (* FLAG ignored-result *)

let underscore_close demi qd =
  let _ = Demi.close demi qd in (* FLAG ignored-result *)
  ()

let inside_closure demi qd k =
  k (fun () -> ignore (Demi.connect demi qd ~dst:3)) (* FLAG ignored-result *)

let _ = Demi.push demi0 qd0 sga0 (* FLAG ignored-result *)
