(* Seeded token-linear violations: dropped tokens, double redemption,
   watch/wait mixing, path-dependent redemption. *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types

let drop_token demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok -> () (* FLAG token-linear *)

let double_wait demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok -> (
      (match Demi.wait demi tok with _ -> ());
      match Demi.wait demi tok with (* FLAG token-linear *)
      | _ -> ())

let watch_then_wait demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok -> (
      Demi.watch demi tok (fun _ -> ());
      match Demi.wait demi tok with (* FLAG token-linear *)
      | _ -> ())

let watch_twice demi qd =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok ->
      Demi.watch demi tok (fun _ -> ());
      Demi.watch demi tok (fun _ -> ()) (* FLAG token-linear *)

let partial_redeem demi qd cond =
  match Demi.pop demi qd with
  | Error _ -> ()
  | Ok tok -> (* FLAG token-linear *)
      if cond then (match Demi.wait demi tok with _ -> ()) else ()

let mint_and_drop demi qd sga =
  ignore (Result.get_ok (Demi.push demi qd sga)) (* FLAG token-linear *)
