(* Seeded sga-ownership violations: the buffer belongs to the device
   between push and the completion of the corresponding wait. *)

module Demi = Demikernel.Demi
module Sga = Demikernel.Sga

let free_inflight demi qd =
  match Demi.sga_alloc demi "x" with
  | Error _ -> ()
  | Ok sga -> (
      match Demi.push demi qd sga with
      | Error _ -> ()
      | Ok tok ->
          Demi.sga_free demi sga; (* FLAG sga-ownership *)
          (match Demi.wait demi tok with _ -> ()))

let double_push demi qd =
  match Demi.sga_alloc demi "y" with
  | Error _ -> ()
  | Ok sga -> (
      match Demi.push demi qd sga with
      | Error _ -> ()
      | Ok tok ->
          (match Demi.push demi qd sga with (* FLAG sga-ownership *)
          | Ok t2 -> ( match Demi.wait demi t2 with _ -> ())
          | Error _ -> ());
          (match Demi.wait demi tok with _ -> ()))

let read_inflight demi qd =
  match Demi.sga_alloc demi "z" with
  | Error _ -> ()
  | Ok sga -> (
      match Demi.push demi qd sga with
      | Error _ -> ()
      | Ok tok ->
          let len = Sga.length sga in (* FLAG sga-ownership *)
          (match Demi.wait demi tok with _ -> ());
          ignore len)
