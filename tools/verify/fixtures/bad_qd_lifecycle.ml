(* Seeded qd-typestate violations. Every line carrying a FLAG comment
   naming a rule must be reported by dk-verify; the engine test
   asserts exact set equality. Fixtures are parsed, never compiled, so
   unbound identifiers are fine. *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types

let listen_before_bind demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok lqd ->
      (match Demi.listen demi lqd with (* FLAG qd-typestate *)
      | Ok () | Error _ -> ());
      (match Demi.close demi lqd with Ok () | Error _ -> ())

let bind_twice demi =
  match Demi.socket demi `Udp with
  | Error _ -> ()
  | Ok qd ->
      (match Demi.bind demi qd ~port:1 with Ok () | Error _ -> ());
      (match Demi.bind demi qd ~port:2 with (* FLAG qd-typestate *)
      | Ok () | Error _ -> ());
      (match Demi.close demi qd with Ok () | Error _ -> ())

let push_unconnected demi sga =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd ->
      (match Demi.push demi qd sga with (* FLAG qd-typestate *)
      | Ok tok -> ( match Demi.wait demi tok with _ -> ())
      | Error _ -> ());
      (match Demi.close demi qd with Ok () | Error _ -> ())

let accept_unlistened demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok lqd ->
      (match Demi.accept demi lqd with (* FLAG qd-typestate *)
      | Ok qd -> ( match Demi.close demi qd with Ok () | Error _ -> ())
      | Error _ -> ());
      (match Demi.close demi lqd with Ok () | Error _ -> ())

let use_after_close demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd -> (
      (match Demi.connect demi qd ~dst:7 with Ok () | Error _ -> ());
      (match Demi.close demi qd with Ok () | Error _ -> ());
      match Demi.pop demi qd with (* FLAG qd-typestate *)
      | Ok tok -> ( match Demi.wait demi tok with _ -> ())
      | Error _ -> ())

let close_twice demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd -> (
      (match Demi.close demi qd with Ok () | Error _ -> ());
      match Demi.close demi qd with (* FLAG qd-typestate *)
      | Ok () | Error _ -> ())

let leak demi =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd -> ( (* FLAG qd-typestate *)
      match Demi.connect demi qd ~dst:9 with Ok () | Error _ -> ())

let close_some_paths demi cond =
  match Demi.socket demi `Tcp with
  | Error _ -> ()
  | Ok qd -> (* FLAG qd-typestate *)
      if cond then (match Demi.close demi qd with Ok () | Error _ -> ())
      else ()

let discard_minted demi =
  let _ = Result.get_ok (Demi.socket demi `Tcp) in (* FLAG qd-typestate *)
  ()
