(** dk-verify: AST-level typestate and dataflow checking for the
    queue/token/buffer protocol (the flow-aware companion to dk-lint's
    token-stream rules).

    Sources are parsed with [compiler-libs] into real OCaml syntax and
    checked by an intra-procedural abstract interpretation over
    let-bound values of the Demi API. Four rule families:

    - [qd-typestate]: the Figure-3 lifecycle over queue descriptors —
      [socket → bind → listen → accept] / [connect → push/pop → close],
      close-exactly-once, no I/O after close, no descriptor leaked
      without reaching [close] on some path.
    - [token-linear]: every [qtoken] minted by [push]/[pop]/
      [accept_async] must reach exactly one of [wait*]/[try_wait]/
      [watch]; no dropped tokens, no double redemption, no mixing
      [watch] with [wait] (§4.4 exactly-one-wakeup).
    - [sga-ownership]: an sga passed to [push] belongs to the device
      until the corresponding wait completes — reading, re-pushing or
      [sga_free]ing it in between races the DMA (§4.5 zero-copy).
    - [ignored-result]: no [(_, Types.error) result] of the Demi API
      discarded via [ignore]/[let _ =]; with the kernel out of the I/O
      path, the [Error] constructor is the only failure report left.

    The analysis is deliberately conservative: a value that escapes the
    local flow (passed to a non-Demi function, captured by a closure,
    returned, stored) stops being tracked and carries no further
    obligations, so every finding is a definite local protocol break.

    Findings share dk-lint's [finding] record and allowlist format
    ([rule path] per line, stale entries reported). *)

val scan_source : path:string -> string -> Lint_engine.finding list
(** Parse and check one source. A file that does not parse yields a
    single [parse-error] finding. [path] selects nothing (all rules run
    everywhere) but appears in diagnostics. *)

val scan_dirs : string list -> Lint_engine.finding list * int
(** Walk the given directories, scan every [.ml], return sorted
    findings and the number of sources scanned. *)
