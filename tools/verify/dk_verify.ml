(* dk-verify driver: parse source directories, run the typestate /
   dataflow analysis, subtract the allowlist, print file:line
   diagnostics, exit nonzero on any finding or stale allowlist entry
   (the allowlist may only shrink). Plumbing lives in Tool_common. *)

let () =
  Tool_common.run_driver ~tool:"dk-verify"
    ~usage:"dk_verify [--root DIR] [--allowlist FILE] [DIR ...]"
    ~default_allowlist:"tools/verify/allowlist.txt"
    ~default_dirs:[ "lib"; "bench"; "examples" ]
    ~scan:Verify_engine.scan_dirs ()
