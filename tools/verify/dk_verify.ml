(* dk-verify driver: parse source directories, run the typestate /
   dataflow analysis, subtract the allowlist, print file:line
   diagnostics, exit nonzero on any finding OR any stale allowlist
   entry (the allowlist may only shrink). *)

let usage = "dk_verify [--root DIR] [--allowlist FILE] [DIR ...]"

let () =
  let root = ref None in
  let allowlist = ref "tools/verify/allowlist.txt" in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: d :: rest ->
        root := Some d;
        parse rest
    | "--allowlist" :: f :: rest ->
        allowlist := f;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "dk-verify: unknown option %s\nusage: %s\n" arg usage;
        exit 2
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !root with Some d -> Sys.chdir d | None -> ());
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bench"; "examples" ] | ds -> ds
  in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "dk-verify: no such directory: %s\n" d;
        exit 2
      end)
    dirs;
  let findings, scanned = Verify_engine.scan_dirs dirs in
  let allow = Lint_engine.load_allowlist !allowlist in
  let kept, stale = Lint_engine.apply_allowlist allow findings in
  List.iter (fun f -> print_endline (Lint_engine.pp_finding f)) kept;
  List.iter
    (fun e ->
      Printf.eprintf
        "dk-verify: stale allowlist entry (no longer matches): %s %s\n"
        e.Lint_engine.a_rule e.Lint_engine.a_path)
    stale;
  Printf.printf "dk-verify: %d source file(s), %d finding(s), %d allowlisted\n"
    scanned (List.length kept)
    (List.length allow - List.length stale);
  if kept <> [] || stale <> [] then exit 1
