(* dk-verify engine: parse with compiler-libs, then run an
   intra-procedural typestate/dataflow analysis over the Demi API.

   The domain tracks three kinds of let-bound values:

     qd      socket/bind/listen/accept/connect/close lifecycle states
     qtoken  live / redeemed / watched linearity states
     sga     owned / in-flight (pushed, wait not yet completed)

   Escape is the safety valve: any use of a tracked value outside the
   recognized Demi-call positions (another function, a closure capture,
   a data structure, the scope's result) drops tracking and all
   obligations, so reports only fire on locally-provable breaks. *)

open Parsetree

type finding = Lint_engine.finding

(* ---------------- small helpers ---------------- *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let last_two (l : Longident.t) =
  let rec components acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> components (s :: acc) l
    | Longident.Lapply (_, l) -> components acc l
  in
  match List.rev (components [] l) with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

(* [Demi.push], [Demikernel.Demi.push], and driver-style aliases
   ([Demi_rt.push]) all count as the Demi API. *)
let demi_fn (e : expression) : string option =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some (("Demi" | "Demi_rt"), f) -> Some f
      | _ -> None)
  | _ -> None

let ident_name (e : expression) : string option =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

(* Unwrap helpers whose application to an [Ok v] yields [v]. *)
let unwrap_fn (e : expression) : bool =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some ("Result", "get_ok") -> true
      | Some ("", ("must" | "ok_exn" | "unwrap" | "get_ok")) -> true
      | _ -> false)
  | _ -> false

let rec strip (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> strip e
  | Pexp_open (_, e) -> strip e
  | _ -> e

(* ---------------- the Demi API surface ---------------- *)

(* Functions returning [(_, Types.error) result]. *)
let result_fns =
  [
    "socket"; "bind"; "listen"; "accept_async"; "accept"; "connect"; "close";
    "push"; "pop"; "sga_alloc"; "sga_alloc_segs"; "merge"; "filter";
    "filter_fn"; "map"; "map_fn"; "sort"; "steer"; "qconnect"; "fcreate";
    "fopen"; "rdma_endpoint";
  ]

let token_producers = [ "push"; "pop"; "accept_async" ]
let qd_result_producers =
  [ "socket"; "accept"; "rdma_endpoint"; "fcreate"; "fopen"; "merge";
    "filter"; "filter_fn"; "map"; "map_fn"; "sort" ]

(* ---------------- abstract domain ---------------- *)

type qd_state = QFresh | QBound | QListening | QReady | QClosed | QTop
type tok_state = TLive | TPart | TWaited | TWatched | TMaybe
type sga_state = SOwned | SInflight

type absval =
  | Qd of { qs : qd_state; ever_closed : bool; born : int }
  | Tok of { ts : tok_state; born : int; sga : string option }
  | Sga of { ss : sga_state; born : int }

module Env = Map.Make (String)

type env = absval Env.t

let join_env (a : env) (b : env) : env =
  Env.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some (Qd x), Some (Qd y) ->
          Some
            (Qd
               {
                 qs = (if x.qs = y.qs then x.qs else QTop);
                 ever_closed = x.ever_closed || y.ever_closed;
                 born = x.born;
               })
      | Some (Tok x), Some (Tok y) ->
          let ts =
            if x.ts = y.ts then x.ts
            else if x.ts = TPart || y.ts = TPart then TPart
            else if x.ts = TLive || y.ts = TLive then TPart
            else TMaybe
          in
          Some (Tok { x with ts; sga = (if x.sga = y.sga then x.sga else None) })
      | Some (Sga x), Some (Sga y) -> if x.ss = y.ss then Some (Sga x) else None
      | _ -> None)
    a b

type ctx = { path : string; findings : finding list ref }

let report ctx line rule message =
  ctx.findings :=
    { Lint_engine.path = ctx.path; line; rule; message } :: !(ctx.findings)

(* ---------------- qd transitions ---------------- *)

let state_name = function
  | QFresh -> "a fresh socket"
  | QBound -> "a bound qd"
  | QListening -> "a listening qd"
  | QReady -> "an established qd"
  | QClosed -> "a closed qd"
  | QTop -> "a qd"

let closed_use ctx line op =
  report ctx line "qd-typestate"
    (Printf.sprintf
       "%s on a closed qd: its descriptor-table entry and device resources \
        are gone, and a bypass stack fails silently instead of EBADF"
       op)

(* Apply [op] to a qd currently in [st]; report protocol breaks and
   return the successor state. *)
let qd_transition ctx line op st =
  match (op, st) with
  | _, QTop -> if op = "close" then QClosed else QTop
  | _, QClosed ->
      if op = "close" then begin
        report ctx line "qd-typestate"
          "close on an already-closed qd: the Figure-3 lifecycle closes \
           exactly once (the second close can hit a reused descriptor)";
        QClosed
      end
      else begin
        closed_use ctx line ("Demi." ^ op);
        QClosed
      end
  | "bind", QFresh -> QBound
  | "bind", QBound ->
      report ctx line "qd-typestate"
        "bind on a qd that is already bound: bind comes once, before listen";
      QBound
  | "bind", (QListening | QReady) ->
      report ctx line "qd-typestate"
        (Printf.sprintf
           "bind on %s: the Figure-3 lifecycle is socket → bind → listen / \
            connect — binding after establishment cannot take effect"
           (state_name st));
      st
  | "listen", QBound -> QListening
  | "listen", QFresh ->
      report ctx line "qd-typestate"
        "listen before bind: an unbound socket has no local port to listen \
         on (socket → bind → listen → accept)";
      QListening
  | "listen", QListening ->
      report ctx line "qd-typestate" "listen called twice on the same qd";
      QListening
  | "listen", QReady ->
      report ctx line "qd-typestate"
        "listen on an established qd: listening and connected roles are \
         exclusive";
      st
  | ("accept" | "accept_async"), QListening -> QListening
  | ("accept" | "accept_async"), (QFresh | QBound | QReady) ->
      report ctx line "qd-typestate"
        (Printf.sprintf
           "accept on %s: only a listening qd produces accept completions \
            (socket → bind → listen → accept)"
           (state_name st));
      st
  | "connect", (QFresh | QBound) -> QReady
  | "connect", QListening ->
      report ctx line "qd-typestate"
        "connect on a listening qd: listening and connecting roles are \
         exclusive";
      st
  | "connect", QReady ->
      (* legal re-target for UDP/filtered queues; nothing to prove *)
      QReady
  | ("push" | "pop" | "blocking_push" | "blocking_pop"), (QReady | QBound) ->
      st
  | ("push" | "pop" | "blocking_push" | "blocking_pop"), QListening ->
      report ctx line "qd-typestate"
        (Printf.sprintf
           "%s on a listening qd: listening descriptors only produce accept \
            completions, never data"
           op);
      st
  | ("push" | "pop" | "blocking_push" | "blocking_pop"), QFresh ->
      report ctx line "qd-typestate"
        (Printf.sprintf
           "%s on a socket that is neither bound nor connected: the data \
            path has no peer (connect first, or bind for UDP receive)"
           op);
      st
  | "close", _ -> QClosed
  | _, _ -> st

(* ---------------- token / sga operations ---------------- *)

let release_sga env = function
  | Some s -> (
      match Env.find_opt s env with
      | Some (Sga g) when g.ss = SInflight ->
          Env.add s (Sga { g with ss = SOwned }) env
      | _ -> env)
  | None -> env

(* Redeem/poll/watch a tracked token. *)
let consume_tok ctx env line kind name (t : [ `Wait | `Maybe | `Watch ]) =
  match Env.find_opt name env with
  | Some (Tok k) ->
      let env = release_sga env k.sga in
      let reportd msg = report ctx line "token-linear" msg in
      let ts =
        match (t, k.ts) with
        | `Wait, (TLive | TPart | TMaybe) -> TWaited
        | `Wait, TWaited ->
            reportd
              (Printf.sprintf
                 "%s on a qtoken already redeemed: each token completes \
                  exactly once — the second wait returns Bad_qtoken or \
                  blocks forever (§4.4)"
                 kind);
            TWaited
        | `Wait, TWatched ->
            reportd
              (Printf.sprintf
                 "%s on a watched qtoken: watch/wait exclusion is \
                  unconditional — the scheduler already owns this \
                  completion (§4.4)"
                 kind);
            TWatched
        | `Maybe, TLive -> TMaybe
        | `Maybe, s -> s
        | `Watch, (TLive | TPart | TMaybe) -> TWatched
        | `Watch, TWatched ->
            reportd
              "watch installed twice on the same qtoken: exactly one \
               callback may own a completion (§4.4 exactly-one-wakeup)";
            TWatched
        | `Watch, TWaited ->
            reportd
              "watch on a qtoken already redeemed by wait: the completion \
               is spent, the callback can never fire";
            TWatched
      in
      Env.add name (Tok { k with ts; sga = None }) env
  | _ -> env

let sga_inflight_use ctx env line name ~how =
  match Env.find_opt name env with
  | Some (Sga g) when g.ss = SInflight ->
      report ctx line "sga-ownership"
        (Printf.sprintf
           "sga %s after push and before the wait completes: zero-copy push \
            transfers ownership to the device, which may still be DMA-ing \
            these bytes (§4.5)"
           how);
      Env.remove name env
  | _ -> env

(* ---------------- obligations at scope exit ---------------- *)

let check_obligation ctx name v =
  match v with
  | Tok { ts = TLive; born; _ } ->
      report ctx born "token-linear"
        (Printf.sprintf
           "qtoken %s never reaches wait/try_wait/watch: its completion can \
            never wake anyone, and the queue slot it pins is never redeemed \
            (§4.4 exactly-one-wakeup)"
           name)
  | Tok { ts = TPart; born; _ } ->
      report ctx born "token-linear"
        (Printf.sprintf
           "qtoken %s is not redeemed on every control-flow path: some \
            branch drops the completion (§4.4 demands exactly one wakeup \
            per token, on every path)"
           name)
  | Qd { qs = QClosed; _ } -> ()
  | Qd { ever_closed = false; born; _ } ->
      report ctx born "qd-typestate"
        (Printf.sprintf
           "qd %s never reaches close on any path: the descriptor-table \
            entry and its device ring survive the variable — close it, or \
            hand it to an owner that will"
           name)
  | Qd { ever_closed = true; born; _ } ->
      report ctx born "qd-typestate"
        (Printf.sprintf
           "qd %s is closed on some paths but not all: the unclosed path \
            leaks the descriptor (close-exactly-once means every path)"
           name)
  | _ -> ()

(* ---------------- AST utilities ---------------- *)

let immediate_children (e : expression) : expression list =
  let acc = ref [] in
  let collector =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr collector e;
  List.rev !acc

let free_lidents (e : expression) : string list =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } -> acc := x :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

let rec pattern_vars (p : pattern) : string list =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_exception p
  | Ppat_lazy p ->
      pattern_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pattern_vars p
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

let rec strip_pat (p : pattern) =
  match p.ppat_desc with
  | Ppat_constraint (p, _) | Ppat_open (_, p) -> strip_pat p
  | _ -> p

(* The single variable bound by an [Ok v] / [Popped v] / [Accepted v]
   pattern, when there is exactly one and it is not an [_name]
   deliberate discard. *)
let construct_payload_var (p : pattern) : (string * string) option =
  match (strip_pat p).ppat_desc with
  | Ppat_construct ({ txt; _ }, Some (_, inner)) -> (
      match last_two txt with
      | Some (_, ctor) -> (
          match (strip_pat inner).ppat_desc with
          | Ppat_var { txt = v; _ } when v = "" || v.[0] <> '_' ->
              Some (ctor, v)
          | _ -> None)
      | None -> None)
  | _ -> None

let is_fun (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* ---------------- the analysis ---------------- *)

(* What the Ok constructor of a recognized producer call carries. *)
type payload =
  | PQd of qd_state
  | PTok of string option (* in-flight sga tied to the minted token *)
  | PSga
  | PNone

let rec analyze ctx (env : env) (e : expression) : env =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      (* bare use as a value: escapes, silently *)
      Env.remove x env
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable -> env
  | Pexp_constraint (e, _) -> analyze ctx env e
  | Pexp_open (_, e) -> analyze ctx env e
  | Pexp_sequence (a, b) ->
      let env = analyze ctx env a in
      analyze ctx env b
  | Pexp_let (_, vbs, body) ->
      let env, bound =
        List.fold_left
          (fun (env, bound) vb ->
            let env, introduced = analyze_binding ctx env vb in
            (env, introduced @ bound))
          (env, []) vbs
      in
      let env = analyze ctx env body in
      List.fold_left
        (fun env name ->
          (match Env.find_opt name env with
          | Some v -> check_obligation ctx name v
          | None -> ());
          Env.remove name env)
        env bound
  | Pexp_letop { let_; ands; body } ->
      let env, bound =
        List.fold_left
          (fun (env, bound) bop ->
            let env, introduced = analyze_binding_op ctx env bop in
            (env, introduced @ bound))
          (env, []) (let_ :: ands)
      in
      let env = analyze ctx env body in
      List.fold_left
        (fun env name ->
          (match Env.find_opt name env with
          | Some v -> check_obligation ctx name v
          | None -> ());
          Env.remove name env)
        env bound
  | Pexp_match (scrut, cases) -> analyze_match ctx env scrut cases
  | Pexp_try (body, handlers) ->
      let env_body = analyze ctx env body in
      (* exceptions may fire mid-body: handlers start from the meet of
         entry and exit, approximated by their join *)
      let env_h0 = join_env env env_body in
      let env_handlers =
        List.map
          (fun c ->
            let env_c =
              List.fold_left
                (fun e v -> Env.remove v e)
                env_h0 (pattern_vars c.pc_lhs)
            in
            let env_c =
              match c.pc_guard with
              | Some g -> analyze ctx env_c g
              | None -> env_c
            in
            analyze ctx env_c c.pc_rhs)
          handlers
      in
      List.fold_left join_env env_body env_handlers
  | Pexp_ifthenelse (cond, then_, else_) ->
      let env = analyze ctx env cond in
      let env_t = analyze ctx env then_ in
      let env_e =
        match else_ with Some e -> analyze ctx env e | None -> env
      in
      join_env env_t env_e
  | Pexp_while (cond, body) ->
      let env = analyze ctx env cond in
      join_env env (analyze ctx env body)
  | Pexp_for (pat, lo, hi, _, body) ->
      let env = analyze ctx env lo in
      let env = analyze ctx env hi in
      let env_b =
        List.fold_left (fun e v -> Env.remove v e) env (pattern_vars pat)
      in
      join_env env (analyze ctx env_b body)
  | Pexp_fun _ | Pexp_function _ -> analyze_closure ctx env e
  | Pexp_apply (fn, args) -> analyze_apply ctx env e fn args
  | _ ->
      (* generic node: every subexpression is visited; bare tracked
         idents inside escape via the Pexp_ident case *)
      List.fold_left (analyze ctx) env (immediate_children e)

(* A closure: transitions inside run zero or many times later, so the
   outer flow learns nothing — captured tracked values escape — but the
   body is still real code, analyzed on its own with a fresh env. *)
and analyze_closure ctx env (e : expression) : env =
  let env =
    List.fold_left (fun env x -> Env.remove x env) env (free_lidents e)
  in
  let rec body_of e =
    match (strip e).pexp_desc with
    | Pexp_fun (_, _, _, body) -> body_of body
    | Pexp_newtype (_, body) -> body_of body
    | _ -> e
  in
  (match (strip (body_of e)).pexp_desc with
  | Pexp_function cases ->
      List.iter
        (fun c ->
          (match c.pc_guard with
          | Some g -> ignore (analyze ctx Env.empty g)
          | None -> ());
          ignore (analyze ctx Env.empty c.pc_rhs))
        cases
  | _ -> ignore (analyze ctx Env.empty (body_of e)));
  env

and analyze_binding ctx env (vb : value_binding) : env * string list =
  let pat = strip_pat vb.pvb_pat in
  match pat.ppat_desc with
  | Ppat_var { txt = name; _ } when is_fun vb.pvb_expr ->
      (* named (possibly rec) function: analyze like a closure *)
      (analyze_closure ctx env vb.pvb_expr, [ name ])
      |> fun (env, _) -> (Env.remove name env, [])
  | Ppat_var { txt = name; _ } ->
      let env, payload = eval_rhs ctx env vb.pvb_expr in
      let born = line_of vb.pvb_loc in
      let env =
        if String.length name > 0 && name.[0] = '_' then Env.remove name env
        else
          match payload with
          | PQd qs -> Env.add name (Qd { qs; ever_closed = false; born }) env
          | PTok sga -> Env.add name (Tok { ts = TLive; born; sga }) env
          | PSga -> Env.add name (Sga { ss = SOwned; born }) env
          | PNone -> Env.remove name env
      in
      (env, [ name ])
  | _ ->
      (* wildcard / tuple / unit patterns: ignored-result is reported by
         the syntactic pass; here just analyze the RHS for transitions *)
      let env, _ = eval_rhs ctx env vb.pvb_expr in
      let env =
        List.fold_left (fun e v -> Env.remove v e) env (pattern_vars pat)
      in
      (env, pattern_vars pat)

(* [let* x = Demi.f ...] (Result.bind and friends): the bound variable
   holds the Ok payload — the Error path short-circuits out of scope,
   which the analysis soundly ignores (nothing is bound there). *)
and analyze_binding_op ctx env (bop : binding_op) : env * string list =
  let pat = strip_pat bop.pbop_pat in
  match pat.ppat_desc with
  | Ppat_var { txt = name; _ } ->
      let env, payload = eval_rhs ~unwrap_result:true ctx env bop.pbop_exp in
      let born = line_of bop.pbop_loc in
      let env =
        if String.length name > 0 && name.[0] = '_' then Env.remove name env
        else
          match payload with
          | PQd qs -> Env.add name (Qd { qs; ever_closed = false; born }) env
          | PTok sga -> Env.add name (Tok { ts = TLive; born; sga }) env
          | PSga -> Env.add name (Sga { ss = SOwned; born }) env
          | PNone -> Env.remove name env
      in
      (env, [ name ])
  | _ ->
      let env, _ = eval_rhs ctx env bop.pbop_exp in
      let env =
        List.fold_left (fun e v -> Env.remove v e) env (pattern_vars pat)
      in
      (env, pattern_vars pat)

(* Evaluate a binding RHS: recognize producer shapes and return the
   payload the bound variable receives. [unwrap_result] is set for
   [let*]-style bindings, where the variable holds the Ok payload
   rather than the wrapped result. *)
and eval_rhs ?(unwrap_result = false) ctx env (e : expression) : env * payload
    =
  let e = strip e in
  match e.pexp_desc with
  | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) when unwrap_fn fn -> (
      let arg = strip arg in
      match demi_fn_of_apply arg with
      | Some _ ->
          let env, payload = process_demi_call ctx env arg in
          (env, payload)
      | None -> (analyze ctx env arg, PNone))
  | Pexp_apply _ when demi_fn_of_apply e <> None -> (
      let env, payload = process_demi_call ctx env e in
      (* a result-returning call bound directly keeps the result
         wrapped; only direct-value producers (queue) pass through
         unless the binder itself unwraps *)
      match demi_fn_of_apply e with
      | Some f when List.mem f result_fns && not unwrap_result -> (env, PNone)
      | _ -> (env, payload))
  | _ -> (analyze ctx env e, PNone)

and demi_fn_of_apply (e : expression) : string option =
  match (strip e).pexp_desc with
  | Pexp_apply (fn, _) -> demi_fn fn
  | _ -> None

(* Process [Demi.f t args]: apply qd/token/sga transitions for tracked
   arguments, walk the rest, and describe the Ok payload. *)
and process_demi_call ctx env (e : expression) : env * payload =
  match (strip e).pexp_desc with
  | Pexp_apply (fn, args) -> (
      let f = match demi_fn fn with Some f -> f | None -> assert false in
      let line = line_of e.pexp_loc in
      let positional =
        List.filter_map
          (fun (lbl, a) ->
            match lbl with Asttypes.Nolabel -> Some a | _ -> None)
          args
      in
      let labelled l =
        List.find_map
          (fun (lbl, a) ->
            match lbl with
            | Asttypes.Labelled s when s = l -> Some a
            | _ -> None)
          args
      in
      (* positional.(0) is the Demi.t; tracked args come after *)
      let pos n = List.nth_opt positional n in
      let walk_rest ?(skip = []) env =
        (* analyze every argument that is not a specially-handled bare
           ident (so closures, nested calls, lists are still covered) *)
        List.fold_left
          (fun env (_, a) ->
            match ident_name (strip a) with
            | Some x when List.mem x skip -> env
            | Some x -> (
                match Env.find_opt x env with
                | Some (Sga _) ->
                    sga_inflight_use ctx env (line_of a.pexp_loc) x
                      ~how:"passed along"
                | Some _ -> Env.remove x env
                | None -> env)
            | None -> analyze ctx env a)
          env args
      in
      let qd_arg_transition env n op =
        match pos n with
        | Some a -> (
            match ident_name (strip a) with
            | Some x -> (
                match Env.find_opt x env with
                | Some (Qd q) ->
                    let qs = qd_transition ctx line op q.qs in
                    let ever_closed = q.ever_closed || qs = QClosed in
                    (Env.add x (Qd { q with qs; ever_closed }) env, [ x ])
                | _ -> (env, [ x ]))
            | None -> (env, []))
        | None -> (env, [])
      in
      let tok_arg_consume env kind =
        match pos 1 with
        | Some a -> (
            match ident_name (strip a) with
            | Some x ->
                ( consume_tok ctx env line f x
                    (match kind with
                    | `Wait -> `Wait
                    | `Maybe -> `Maybe
                    | `Watch -> `Watch),
                  [ x ] )
            | None -> (env, []))
        | None -> (env, [])
      in
      match f with
      | "socket" -> (walk_rest env, PQd QFresh)
      | "queue" -> (walk_rest env, PQd QReady)
      | "bind" | "listen" | "connect" | "close" ->
          let env, skip = qd_arg_transition env 1 f in
          (walk_rest ~skip env, PNone)
      | "accept" | "accept_async" ->
          let env, skip = qd_arg_transition env 1 "accept" in
          let env = walk_rest ~skip env in
          if f = "accept" then (env, PQd QReady) else (env, PTok None)
      | "pop" ->
          let env, skip = qd_arg_transition env 1 f in
          (walk_rest ~skip env, PTok None)
      | "push" | "blocking_push" ->
          let env, skip = qd_arg_transition env 1 f in
          (* the sga argument: in-flight for push, completed-in-call for
             blocking_push *)
          let env, skip, tied =
            match pos 2 with
            | Some a -> (
                match ident_name (strip a) with
                | Some x -> (
                    match Env.find_opt x env with
                    | Some (Sga g) ->
                        if g.ss = SInflight then
                          ( sga_inflight_use ctx env (line_of a.pexp_loc) x
                              ~how:"pushed again",
                            x :: skip,
                            None )
                        else if f = "push" then
                          ( Env.add x (Sga { g with ss = SInflight }) env,
                            x :: skip,
                            Some x )
                        else (env, x :: skip, None)
                    | _ -> (env, x :: skip, None))
                | None -> (env, skip, None))
            | None -> (env, skip, None)
          in
          let env = walk_rest ~skip env in
          if f = "push" then (env, PTok tied) else (env, PNone)
      | "blocking_pop" ->
          let env, skip = qd_arg_transition env 1 f in
          (walk_rest ~skip env, PNone)
      | "wait" | "wait_timeout" ->
          let kind = if f = "wait" then `Wait else `Maybe in
          let env, skip = tok_arg_consume env kind in
          (walk_rest ~skip env, PNone)
      | "try_wait" ->
          let env, skip = tok_arg_consume env `Maybe in
          (walk_rest ~skip env, PNone)
      | "watch" ->
          let env, skip = tok_arg_consume env `Watch in
          (walk_rest ~skip env, PNone)
      | "sga_free" -> (
          match pos 1 with
          | Some a -> (
              match ident_name (strip a) with
              | Some x -> (
                  match Env.find_opt x env with
                  | Some (Sga g) when g.ss = SInflight ->
                      let env =
                        sga_inflight_use ctx env line x ~how:"freed"
                      in
                      (walk_rest ~skip:[ x ] env, PNone)
                  | _ -> (walk_rest ~skip:[ x ] (Env.remove x env), PNone))
              | None -> (walk_rest env, PNone))
          | None -> (walk_rest env, PNone))
      | "sga_alloc" | "sga_alloc_segs" -> (walk_rest env, PSga)
      | "merge" | "filter" | "filter_fn" | "map" | "map_fn" | "sort"
      | "steer" ->
          (* composition: the source descriptor's fate is tied to the
             derived queue — ownership is shared, tracking ends *)
          let escape_qd env n =
            match pos n with
            | Some a -> (
                match ident_name (strip a) with
                | Some x -> (
                    match Env.find_opt x env with
                    | Some (Qd q) ->
                        if q.qs = QClosed then
                          closed_use ctx line ("Demi." ^ f);
                        (Env.remove x env, [ x ])
                    | _ -> (env, [ x ]))
                | None -> (env, []))
            | None -> (env, [])
          in
          let env, s1 = escape_qd env 1 in
          let env, s2 = if f = "merge" then escape_qd env 2 else (env, []) in
          let env = walk_rest ~skip:(s1 @ s2) env in
          if f = "steer" then (env, PNone) else (env, PQd QReady)
      | "qconnect" ->
          let check_lbl env l =
            match labelled l with
            | Some a -> (
                match ident_name (strip a) with
                | Some x -> (
                    match Env.find_opt x env with
                    | Some (Qd q) when q.qs = QClosed ->
                        closed_use ctx line "Demi.qconnect";
                        env
                    | _ -> env)
                | None -> analyze ctx env a)
            | None -> env
          in
          let env = check_lbl env "src" in
          let env = check_lbl env "dst" in
          (env, PNone)
      | "fcreate" | "fopen" | "rdma_endpoint" -> (walk_rest env, PQd QReady)
      | "wait_any" | "wait_all" ->
          (* token lists: members escape (redeemed by the call) *)
          (walk_rest env, PNone)
      | _ -> (walk_rest env, PNone))
  | _ -> (env, PNone)

(* match / begin match: producer scrutinees bind their Ok payloads and
   op_result scrutinees bind Popped/Accepted payloads in the arms. *)
and analyze_match ctx env scrut cases : env =
  let scrut = strip scrut in
  let scrut_payload, env =
    match demi_fn_of_apply scrut with
    | Some _ ->
        let env, payload = process_demi_call ctx env scrut in
        (payload, env)
    | None -> (
        (* [match unwrap (Demi.f ...) with] — payload matched directly *)
        match scrut.pexp_desc with
        | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
          when unwrap_fn fn && demi_fn_of_apply (strip arg) <> None ->
            let env, _ = process_demi_call ctx env (strip arg) in
            (PNone, env)
        | _ -> (PNone, analyze ctx env scrut))
  in
  let analyze_case env_in c =
    let bound = pattern_vars c.pc_lhs in
    let env_c = List.fold_left (fun e v -> Env.remove v e) env_in bound in
    (* bind the payload variable when the arm names it *)
    let env_c, tracked =
      match (construct_payload_var c.pc_lhs, scrut_payload) with
      | Some ("Ok", v), PQd qs ->
          ( Env.add v
              (Qd { qs; ever_closed = false; born = line_of c.pc_lhs.ppat_loc })
              env_c,
            [ v ] )
      | Some ("Ok", v), PTok sga ->
          ( Env.add v
              (Tok { ts = TLive; born = line_of c.pc_lhs.ppat_loc; sga })
              env_c,
            [ v ] )
      | Some ("Ok", v), PSga ->
          ( Env.add v
              (Sga { ss = SOwned; born = line_of c.pc_lhs.ppat_loc })
              env_c,
            [ v ] )
      | Some ("Popped", v), _ ->
          ( Env.add v
              (Sga { ss = SOwned; born = line_of c.pc_lhs.ppat_loc })
              env_c,
            [ v ] )
      | Some ("Accepted", v), _ ->
          ( Env.add v
              (Qd
                 {
                   qs = QReady;
                   ever_closed = false;
                   born = line_of c.pc_lhs.ppat_loc;
                 })
              env_c,
            [ v ] )
      | _ -> (env_c, [])
    in
    let env_c =
      match c.pc_guard with Some g -> analyze ctx env_c g | None -> env_c
    in
    let env_c = analyze ctx env_c c.pc_rhs in
    (* scope of arm-bound values ends with the arm *)
    List.fold_left
      (fun env name ->
        (match Env.find_opt name env with
        | Some v -> check_obligation ctx name v
        | None -> ());
        Env.remove name env)
      env_c (tracked @ bound)
  in
  match cases with
  | [] -> env
  | c :: rest ->
      List.fold_left
        (fun acc c -> join_env acc (analyze_case env c))
        (analyze_case env c) rest

and analyze_apply ctx env (e : expression) fn args : env =
  match demi_fn fn with
  | Some _ ->
      let env, _ = process_demi_call ctx env e in
      env
  | None ->
      let env = analyze ctx env fn in
      List.fold_left
        (fun env (_, a) ->
          let a' = strip a in
          match ident_name a' with
          | Some x -> (
              match Env.find_opt x env with
              | Some (Sga g) when g.ss = SInflight ->
                  sga_inflight_use ctx env (line_of a.pexp_loc) x
                    ~how:"read by another function"
              | Some _ -> Env.remove x env
              | None -> env)
          | None -> analyze ctx env a)
        env args

(* ---------------- the syntactic discard pass ---------------- *)

(* [ignore (Demi.f ...)], [let _ = Demi.f ...] and the unwrapped forms
   [ignore (Result.get_ok (Demi.push ...))] are pure shapes — no flow
   needed, and they must fire inside closures too, so they run as a
   separate whole-tree iteration. *)

let discard_findings ctx (str : structure) =
  let check_discard ~how (e : expression) =
    let e = strip e in
    match demi_fn_of_apply e with
    | Some f when List.mem f result_fns ->
        report ctx (line_of e.pexp_loc) "ignored-result"
          (Printf.sprintf
             "(_, Types.error) result of Demi.%s discarded via %s: match it \
              — with the kernel out of the I/O path, the Error constructor \
              is the only failure report the application gets (§4.4)"
             f how)
    | _ -> (
        (* unwrapped producer dropped: the payload itself leaks *)
        match e.pexp_desc with
        | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) when unwrap_fn fn -> (
            match demi_fn_of_apply (strip arg) with
            | Some f when List.mem f token_producers ->
                report ctx (line_of e.pexp_loc) "token-linear"
                  (Printf.sprintf
                     "qtoken minted by Demi.%s unwrapped and immediately \
                      discarded via %s: the completion can never be \
                      redeemed (§4.4 exactly-one-wakeup)"
                     f how)
            | Some f when List.mem f qd_result_producers ->
                report ctx (line_of e.pexp_loc) "qd-typestate"
                  (Printf.sprintf
                     "qd minted by Demi.%s unwrapped and immediately \
                      discarded via %s: the descriptor can never be closed"
                     f how)
            | _ -> ())
        | _ -> ())
  in
  let expr_hook it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "ignore"; _ }; _ },
          [ (Asttypes.Nolabel, arg) ] ) ->
        check_discard ~how:"ignore" arg
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_any -> check_discard ~how:"let _" vb.pvb_expr
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let str_hook it (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_any -> check_discard ~how:"let _" vb.pvb_expr
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      structure_item = str_hook;
    }
  in
  it.structure it str

(* ---------------- toplevel ---------------- *)

let rec analyze_structure ctx (str : structure) =
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              if is_fun vb.pvb_expr then
                ignore (analyze_closure ctx Env.empty vb.pvb_expr)
              else ignore (analyze ctx Env.empty vb.pvb_expr))
            vbs
      | Pstr_eval (e, _) -> ignore (analyze ctx Env.empty e)
      | Pstr_module { pmb_expr; _ } -> analyze_module ctx pmb_expr
      | Pstr_recmodule mbs ->
          List.iter (fun { pmb_expr; _ } -> analyze_module ctx pmb_expr) mbs
      | _ -> ())
    str

and analyze_module ctx (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure str -> analyze_structure ctx str
  | Pmod_functor (_, me) | Pmod_constraint (me, _) -> analyze_module ctx me
  | _ -> ()

let scan_source ~path (src : string) : finding list =
  let ctx = { path; findings = ref [] } in
  (match
     let lexbuf = Lexing.from_string src in
     Lexing.set_filename lexbuf path;
     Parse.implementation lexbuf
   with
  | str ->
      analyze_structure ctx str;
      discard_findings ctx str
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error err -> line_of (Syntaxerr.location_of_error err)
        | _ -> 1
      in
      report ctx line "parse-error"
        "source does not parse as OCaml: dk-verify needs real syntax (is \
         this file generated or preprocessed?)");
  let compare_f (a : finding) (b : finding) =
    match String.compare a.Lint_engine.path b.Lint_engine.path with
    | 0 -> (
        match compare a.Lint_engine.line b.Lint_engine.line with
        | 0 -> String.compare a.Lint_engine.rule b.Lint_engine.rule
        | c -> c)
    | c -> c
  in
  List.sort_uniq compare_f !(ctx.findings)

(* ---------------- filesystem walking ---------------- *)

let scan_dirs (dirs : string list) : finding list * int =
  let files = Tool_common.ml_files dirs in
  let findings =
    List.concat_map
      (fun f -> scan_source ~path:f (Tool_common.read_file f))
      files
  in
  (List.sort Tool_common.compare_finding findings, List.length files)
