(* dk-shard engine: a two-pass interprocedural shard-safety and
   determinism analysis over the whole lib/ source set.

   Pass 1 parses every file with compiler-libs and computes a summary
   per function: which intrinsic effects its body performs (wall-clock
   reads, non-simulated randomness, hash-order-dependent iteration,
   blocking on the engine), which functions it may call, whether it
   mutates module-level state, and whether it calls through values the
   analysis cannot resolve (the [unknown] taint). Module-level mutable
   bindings are collected into the shared-state inventory, classified
   by [[@@shard.per_shard]] / [[@@shard.immutable]] attributes (obs
   instrument handles are recognized automatically).

   Pass 2 propagates the summaries over the approximated call graph,
   starting from the shard-boundary entry points: the [Demi] API
   surface and [[@@shard.entry]] functions (Api roots), callbacks
   registered with [Engine.at]/[Engine.after]/[Demi.watch]/
   [Token.watch] (Poll roots), and [Fiber.spawn] bodies (Fiber roots).
   Violations are reported at the root's definition with the offending
   call chain in the message.

   Rule families:
     shard-state    unclassified module-level mutable state, and any
                    mutation of [[@@shard.immutable]]-classified state
     det-source     Clock / Random / HashOrder reachable from any root
     poll-blocking  Blocking reachable from a Poll or Fiber root

   Like dk-verify, this parses only (no typechecking): module
   resolution is by the last two path components plus per-file
   [module X = Y] aliases, so [Dk_sim.Engine.at], [Engine.at] and an
   aliased [E.at] all resolve to [Engine.at]. *)

open Parsetree

type finding = Tool_common.finding

type effect_kind = Clock | Random | HashOrder | Blocking | MutGlobal

type effect_site = { via : string; at : int }
(** what was called ([via], display form) and on which line *)

type root_kind = Api | Poll | Fiber

type summary = {
  key : string; (* "Module.fn", "Module.fn.local", "Module.fn.<cb@N>" *)
  s_path : string;
  def_line : int;
  mutable intrinsic : (effect_kind * effect_site) list; (* first per kind *)
  mutable calls : string list; (* candidate callee keys *)
  mutable unknown : bool; (* called through something unresolvable *)
  mutable root : root_kind option;
}

type classification =
  | Per_shard of string
  | Immutable of string
  | Obs_handle
  | Tooling of string
  | Unclassified

type g_kind = GRef | GHashtbl | GContainer | GConstructed

type global = {
  g_module : string;
  g_name : string;
  g_path : string;
  g_line : int;
  g_kind : g_kind;
  g_class : classification;
}

type mutation = {
  m_module : string; (* target's module *)
  m_name : string;
  m_path : string; (* where the write happens *)
  m_line : int;
  m_how : string; (* ":=", "Hashtbl.replace", "field write", ... *)
}

type program = {
  summaries : (string, summary) Hashtbl.t;
  mutable globals : global list;
  mutable mutations : mutation list;
  mutable parse_failures : finding list;
}

(* ---------------- small helpers ---------------- *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let last_two (l : Longident.t) =
  let rec components acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> components (s :: acc) l
    | Longident.Lapply (_, l) -> components acc l
  in
  match List.rev (components [] l) with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

let rec strip (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> strip e
  | Pexp_open (_, e) -> strip e
  | _ -> e

let rec strip_pat (p : pattern) =
  match p.ppat_desc with
  | Ppat_constraint (p, _) | Ppat_open (_, p) -> strip_pat p
  | _ -> p

let is_fun (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* ---------------- attributes ---------------- *)

let attr_string (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      s
  | _ -> ""

let classification_of_attrs attrs =
  List.find_map
    (fun (a : attribute) ->
      match a.attr_name.txt with
      | "shard.per_shard" -> Some (Per_shard (attr_string a))
      | "shard.immutable" -> Some (Immutable (attr_string a))
      | "shard.tooling" -> Some (Tooling (attr_string a))
      | _ -> None)
    attrs

let has_entry_attr attrs =
  List.exists
    (fun (a : attribute) -> a.attr_name.txt = "shard.entry")
    attrs

(* ---------------- intrinsic effect sources ---------------- *)

(* [Det] (lib/util/det.ml) is the sanctioned sorted-iteration wrapper:
   its internal Hashtbl.fold is what makes everyone else's iteration
   deterministic, so it is exempt from the HashOrder intrinsic. *)
let intrinsic_of ~cur_module (m, f) : (effect_kind * string) option =
  match (m, f) with
  | "Unix", ("gettimeofday" | "time" | "localtime" | "gmtime" | "times") ->
      Some (Clock, "Unix." ^ f)
  | "Sys", "time" -> Some (Clock, "Sys.time")
  | "Random", _ -> Some (Random, "Random." ^ f)
  | "Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values")
    when cur_module <> "Det" ->
      Some (HashOrder, "Hashtbl." ^ f)
  | "Unix", ("sleep" | "sleepf" | "select") -> Some (Blocking, "Unix." ^ f)
  | "Thread", "delay" -> Some (Blocking, "Thread.delay")
  | "Engine", ("step" | "run_until" | "run_for" | "run")
    when cur_module <> "Engine" ->
      Some (Blocking, "Engine." ^ f)
  | ( "Demi",
      ( "wait" | "wait_timeout" | "wait_any" | "wait_all" | "wait_next"
      | "blocking_push" | "blocking_pop" ) )
    when cur_module <> "Demi" ->
      Some (Blocking, "Demi." ^ f)
  | _ -> None

(* Callback-registration surface: (module, fn), index of the callback
   among positional args, and what kind of root the callback becomes. *)
let registration_of (m, f) : (int * root_kind) option =
  match (m, f) with
  | "Engine", ("at" | "after") -> Some (2, Poll)
  | ("Demi" | "Token"), "watch" -> Some (2, Poll)
  | "Fiber", "spawn" -> Some (1, Fiber)
  | _ -> None

(* Container-mutating operations: (module, fn) whose first argument is
   the mutated structure. *)
let mutator_of (m, f) : bool =
  match (m, f) with
  | "Hashtbl", ("add" | "replace" | "remove" | "reset" | "clear"
               | "filter_map_inplace") -> true
  | "Queue", ("add" | "push" | "pop" | "take" | "clear" | "transfer") -> true
  | "Buffer", ("clear" | "reset") -> true
  | "Buffer", f when String.length f >= 4 && String.sub f 0 4 = "add_" -> true
  | "Atomic", ("set" | "incr" | "decr" | "exchange" | "compare_and_set") ->
      true
  | "Array", ("set" | "fill" | "blit") -> true
  | "Bytes", ("set" | "fill" | "blit") -> true
  | _ -> false

(* ---------------- global (module-level state) detection ---------------- *)

let global_kind_of_rhs (e : expression) : [ `Obs | `Kind of g_kind ] option =
  match (strip e).pexp_desc with
  | Pexp_apply (fn, _) -> (
      match (strip fn).pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match last_two txt with
          | Some ("", "ref") -> Some (`Kind GRef)
          | Some ("Metrics", ("counter" | "gauge" | "hist")) -> Some `Obs
          | Some ("Hashtbl", "create") -> Some (`Kind GHashtbl)
          | Some (("Queue" | "Buffer" | "Atomic"), ("create" | "make"))
          | Some ("Array", ("make" | "init" | "of_list" | "copy"))
          | Some ("Bytes", ("create" | "make")) ->
              Some (`Kind GContainer)
          | Some (_, ("create" | "make")) -> Some (`Kind GConstructed)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---------------- per-file analysis (pass 1) ---------------- *)

type fctx = {
  prog : program;
  path : string;
  cur_module : string;
  aliases : (string * string) list; (* module alias -> target last comp. *)
  toplevel : (string, unit) Hashtbl.t; (* toplevel value names of file *)
  top_globals : (string, unit) Hashtbl.t; (* toplevel global names *)
  mutable pending_roots : (string * root_kind) list;
}

let resolve_mod fc m =
  match List.assoc_opt m fc.aliases with Some m' -> m' | None -> m

let new_summary fc key line =
  let s =
    {
      key;
      s_path = fc.path;
      def_line = line;
      intrinsic = [];
      calls = [];
      unknown = false;
      root = None;
    }
  in
  Hashtbl.replace fc.prog.summaries key s;
  s

let add_effect (s : summary) kind via line =
  if not (List.mem_assoc kind s.intrinsic) then
    s.intrinsic <- (kind, { via; at = line }) :: s.intrinsic

let add_call (s : summary) callee =
  if not (List.mem callee s.calls) then s.calls <- callee :: s.calls

let record_mutation fc node ~m ~name ~line ~how =
  fc.prog.mutations <-
    { m_module = m; m_name = name; m_path = fc.path; m_line = line; m_how = how }
    :: fc.prog.mutations;
  add_effect node MutGlobal (m ^ "." ^ name) line

(* Resolve an identifier occurrence. [locals] maps locally let-bound
   function names to their summary keys. [call] is true when the ident
   sits in call position, where an unresolvable name taints the
   summary (a parameter or stored closure: we cannot see its body). *)
(* Operators ([+], [@@], [|>], ...) appear as bare idents in call
   position in every arithmetic expression; they carry none of the
   effects we track and must not taint the summary. *)
let is_operator x =
  x <> ""
  &&
  match x.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> false | _ -> true

let note_ident fc (node : summary) locals ~call ~line (txt : Longident.t) =
  match txt with
  | Longident.Lident x -> (
      match List.assoc_opt x locals with
      | Some key -> add_call node key
      | None ->
          if Hashtbl.mem fc.toplevel x then
            add_call node (fc.cur_module ^ "." ^ x)
          else if call && not (is_operator x) then node.unknown <- true)
  | _ -> (
      match last_two txt with
      | Some (m, f) -> (
          let m = resolve_mod fc m in
          match intrinsic_of ~cur_module:fc.cur_module (m, f) with
          | Some (kind, via) -> add_effect node kind via line
          | None -> add_call node (m ^ "." ^ f))
      | None -> ())

(* The single target of a mutation-shaped expression, when it is a
   named module-level binding: [Some (module, name)]. *)
let global_target fc locals (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      if
        Hashtbl.mem fc.top_globals x
        && not (List.mem_assoc x locals)
      then Some (fc.cur_module, x)
      else None
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some (m, f) when m <> "" -> Some (resolve_mod fc m, f)
      | _ -> None)
  | _ -> None

let rec walk fc (node : summary) locals (e : expression) : unit =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      note_ident fc node locals ~call:false ~line:(line_of e.pexp_loc) txt
  | Pexp_let (rf, vbs, body) ->
      let locals' =
        List.fold_left
          (fun locals' vb ->
            match (strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt = name; _ } when is_fun vb.pvb_expr ->
                let key = node.key ^ "." ^ name in
                let child = new_summary fc key (line_of vb.pvb_loc) in
                let inner =
                  (* recursive locals see themselves *)
                  if rf = Asttypes.Recursive then (name, key) :: locals'
                  else locals'
                in
                walk fc child inner vb.pvb_expr;
                (name, key) :: locals'
            | _ ->
                walk fc node locals' vb.pvb_expr;
                locals')
          locals vbs
      in
      walk fc node locals' body
  | Pexp_apply (fn, args) -> walk_apply fc node locals e fn args
  | Pexp_setfield (target, _, value) ->
      (match global_target fc locals target with
      | Some (m, name) ->
          record_mutation fc node ~m ~name ~line:(line_of e.pexp_loc)
            ~how:"field write"
      | None -> walk fc node locals target);
      walk fc node locals value
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk fc node locals) default;
      walk fc node locals body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk fc node locals) c.pc_guard;
          walk fc node locals c.pc_rhs)
        cases
  | Pexp_newtype (_, body) -> walk fc node locals body
  | _ -> iter_children fc node locals e

and iter_children fc node locals (e : expression) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> walk fc node locals c);
    }
  in
  Ast_iterator.default_iterator.expr it e

(* An expression passed where a callback is expected: either a literal
   closure (which becomes its own synthetic summary) or the name of a
   function (marked as a root after all files are read). *)
and handle_callback fc (node : summary) locals kind (arg : expression) =
  let arg = strip arg in
  match arg.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
      let line = line_of arg.pexp_loc in
      let key = Printf.sprintf "%s.<cb@%d>" node.key line in
      let cb = new_summary fc key line in
      cb.root <- Some kind;
      walk fc cb locals arg
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match List.assoc_opt x locals with
      | Some key -> fc.pending_roots <- (key, kind) :: fc.pending_roots
      | None ->
          if Hashtbl.mem fc.toplevel x then
            fc.pending_roots <-
              (fc.cur_module ^ "." ^ x, kind) :: fc.pending_roots
          else node.unknown <- true)
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some (m, f) ->
          fc.pending_roots <-
            (resolve_mod fc m ^ "." ^ f, kind) :: fc.pending_roots
      | None -> ())
  | _ ->
      (* computed callback: analyze it in place, taint the caller *)
      node.unknown <- true;
      walk fc node locals arg

and walk_apply fc node locals (e : expression) fn args =
  let line = line_of e.pexp_loc in
  let positional =
    List.filter_map
      (fun (lbl, a) ->
        match lbl with Asttypes.Nolabel -> Some a | _ -> None)
      args
  in
  let fn_path =
    match (strip fn).pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match last_two txt with
        | Some (m, f) -> Some (resolve_mod fc m, f)
        | None -> None)
    | _ -> None
  in
  (* the callee itself *)
  (match (strip fn).pexp_desc with
  | Pexp_ident { txt; _ } -> note_ident fc node locals ~call:true ~line txt
  | Pexp_fun _ | Pexp_function _ ->
      (* immediately-applied closure: effects are the caller's *)
      walk fc node locals fn
  | _ ->
      (* call through a field / array slot / computed expr *)
      node.unknown <- true;
      walk fc node locals fn);
  (* mutation shapes *)
  (match fn_path with
  | Some ("", (":=" | "incr" | "decr")) -> (
      match positional with
      | target :: _ -> (
          match global_target fc locals target with
          | Some (m, name) ->
              record_mutation fc node ~m ~name ~line ~how:":="
          | None -> ())
      | [] -> ())
  | Some (m, f) when mutator_of (m, f) -> (
      match positional with
      | target :: _ -> (
          match global_target fc locals target with
          | Some (gm, name) ->
              record_mutation fc node ~m:gm ~name ~line ~how:(m ^ "." ^ f)
          | None -> ())
      | [] -> ())
  | _ -> ());
  (* the arguments; a registered callback is carved out as a root *)
  let cb_index =
    match fn_path with
    | Some p -> (
        match registration_of p with
        | Some (idx, kind) -> Some (idx, kind)
        | None -> None)
    | None -> None
  in
  let pos = ref (-1) in
  List.iter
    (fun (lbl, a) ->
      (match lbl with Asttypes.Nolabel -> incr pos | _ -> ());
      match cb_index with
      | Some (idx, kind) when lbl = Asttypes.Nolabel && !pos = idx ->
          handle_callback fc node locals kind a
      | _ -> walk fc node locals a)
    args

(* ---------------- file-level collection ---------------- *)

let collect_aliases (str : structure) =
  List.filter_map
    (fun si ->
      match si.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } -> (
          match last_two txt with
          | Some (_, last) -> Some (name, last)
          | None -> None)
      | _ -> None)
    str

let rec toplevel_bindings (str : structure) : value_binding list =
  List.concat_map
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> vbs
      | Pstr_module
          { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          toplevel_bindings sub
      | _ -> [])
    str

let analyze_file prog ~path (src : string) : unit =
  let cur_module = module_of_path path in
  match
    let lexbuf = Lexing.from_string src in
    Lexing.set_filename lexbuf path;
    Parse.implementation lexbuf
  with
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error err -> line_of (Syntaxerr.location_of_error err)
        | _ -> 1
      in
      prog.parse_failures <-
        {
          Tool_common.path;
          line;
          rule = "parse-error";
          message =
            "source does not parse as OCaml: dk-shard needs real syntax (is \
             this file generated or preprocessed?)";
        }
        :: prog.parse_failures
  | str ->
      let bindings = toplevel_bindings str in
      let toplevel = Hashtbl.create 64 in
      let top_globals = Hashtbl.create 8 in
      (* names first: bodies may forward-reference later bindings *)
      List.iter
        (fun vb ->
          match (strip_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt = name; _ } ->
              Hashtbl.replace toplevel name ();
              if
                (not (is_fun vb.pvb_expr))
                && global_kind_of_rhs vb.pvb_expr <> None
              then Hashtbl.replace top_globals name ()
          | _ -> ())
        bindings;
      let fc =
        {
          prog;
          path;
          cur_module;
          aliases = collect_aliases str;
          toplevel;
          top_globals;
          pending_roots = [];
        }
      in
      List.iter
        (fun vb ->
          match (strip_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt = name; _ } when is_fun vb.pvb_expr ->
              let key = cur_module ^ "." ^ name in
              let s = new_summary fc key (line_of vb.pvb_loc) in
              if cur_module = "Demi" || has_entry_attr vb.pvb_attributes then
                s.root <- Some Api;
              walk fc s [ (name, key) ] vb.pvb_expr
          | Ppat_var { txt = name; _ } -> (
              match global_kind_of_rhs vb.pvb_expr with
              | Some `Obs ->
                  prog.globals <-
                    {
                      g_module = cur_module;
                      g_name = name;
                      g_path = path;
                      g_line = line_of vb.pvb_loc;
                      g_kind = GConstructed;
                      g_class = Obs_handle;
                    }
                    :: prog.globals
              | Some (`Kind k) ->
                  let cls =
                    match classification_of_attrs vb.pvb_attributes with
                    | Some c -> c
                    | None -> Unclassified
                  in
                  prog.globals <-
                    {
                      g_module = cur_module;
                      g_name = name;
                      g_path = path;
                      g_line = line_of vb.pvb_loc;
                      g_kind = k;
                      g_class = cls;
                    }
                    :: prog.globals
              | None -> ())
          | _ -> ())
        bindings;
      (* roots named (rather than written inline) at registration sites *)
      List.iter
        (fun (key, kind) ->
          match Hashtbl.find_opt prog.summaries key with
          | Some s -> (
              match (s.root, kind) with
              | None, _ | Some Api, (Poll | Fiber) -> s.root <- Some kind
              | Some _, _ -> ())
          | None -> ())
        fc.pending_roots

(* ---------------- pass 2: propagation ---------------- *)

let kind_noun = function
  | Clock -> "wall-clock read"
  | Random -> "non-simulated randomness"
  | HashOrder -> "hash-order-dependent iteration"
  | Blocking -> "blocking call"
  | MutGlobal -> "module-state mutation"

let root_noun = function
  | Api -> "API entry"
  | Poll -> "poll callback"
  | Fiber -> "fiber body"

(* BFS from [root]; report the first chain to each offending effect
   kind. Shortest chains first, so diagnostics name the most direct
   witness. *)
let propagate_root prog (root : summary) : finding list =
  let det_wanted = [ Clock; Random; HashOrder ] in
  let blocking_wanted =
    match root.root with Some (Poll | Fiber) -> true | _ -> false
  in
  let visited = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace visited root.key ();
  Queue.add root.key queue;
  let chain_to key =
    let rec up acc key =
      match Hashtbl.find_opt parent key with
      | Some p -> up (key :: acc) p
      | None -> key :: acc
    in
    String.concat " -> " (up [] key)
  in
  let det_hit = ref None and blk_hit = ref None in
  while not (Queue.is_empty queue) do
    let key = Queue.take queue in
    match Hashtbl.find_opt prog.summaries key with
    | None -> ()
    | Some s ->
        List.iter
          (fun (kind, (site : effect_site)) ->
            if List.mem kind det_wanted && !det_hit = None then
              det_hit := Some (kind, s, site);
            if kind = Blocking && blocking_wanted && !blk_hit = None then
              blk_hit := Some (kind, s, site))
          (List.rev s.intrinsic);
        List.iter
          (fun callee ->
            if not (Hashtbl.mem visited callee) then begin
              Hashtbl.replace visited callee ();
              Hashtbl.replace parent callee key;
              Queue.add callee queue
            end)
          (List.rev s.calls)
  done;
  let mk rule (kind, (s : summary), (site : effect_site)) =
    {
      Tool_common.path = root.s_path;
      line = root.def_line;
      rule;
      message =
        Printf.sprintf
          "%s reachable from %s %s: %s -> %s (%s:%d)%s"
          (kind_noun kind)
          (root_noun (Option.value root.root ~default:Api))
          root.key (chain_to s.key) site.via s.s_path site.at
          (match kind with
          | Blocking ->
              " — an engine poll iteration must not block outside the \
               virtual clock"
          | _ -> " — shard replay requires identical output for identical \
                  inputs");
    }
  in
  List.filter_map
    (fun x -> x)
    [
      Option.map (mk "det-source") !det_hit;
      Option.map (mk "poll-blocking") !blk_hit;
    ]

let g_kind_name = function
  | GRef -> "ref"
  | GHashtbl -> "hashtbl"
  | GContainer -> "container"
  | GConstructed -> "constructed"

let class_name = function
  | Per_shard _ -> "per-shard"
  | Immutable _ -> "shared-immutable"
  | Obs_handle -> "obs-handle"
  | Tooling _ -> "tooling"
  | Unclassified -> "UNCLASSIFIED"

let class_reason = function
  | Per_shard r | Immutable r | Tooling r -> r
  | Obs_handle | Unclassified -> ""

let state_findings prog : finding list =
  let decl_findings =
    List.filter_map
      (fun g ->
        match g.g_class with
        | Unclassified ->
            Some
              {
                Tool_common.path = g.g_path;
                line = g.g_line;
                rule = "shard-state";
                message =
                  Printf.sprintf
                    "module-level mutable state %s.%s (%s): unclassified \
                     shared state breaks shard isolation — move it behind a \
                     constructor-passed record, or mark it [@@shard.per_shard \
                     \"why\"] / [@@shard.immutable \"why\"], or allowlist \
                     with a justifying comment"
                    g.g_module g.g_name (g_kind_name g.g_kind);
              }
        | _ -> None)
      prog.globals
  in
  let immutable g =
    match g.g_class with Immutable _ -> true | _ -> false
  in
  let mut_findings =
    List.filter_map
      (fun m ->
        match
          List.find_opt
            (fun g -> g.g_module = m.m_module && g.g_name = m.m_name)
            prog.globals
        with
        | Some g when immutable g ->
            Some
              {
                Tool_common.path = m.m_path;
                line = m.m_line;
                rule = "shard-state";
                message =
                  Printf.sprintf
                    "mutation (%s) of %s.%s, which is classified \
                     [@@shard.immutable]: shared-immutable state must never \
                     be written after module initialization (%s:%d)"
                    m.m_how m.m_module m.m_name g.g_path g.g_line;
              }
        | _ -> None)
      prog.mutations
  in
  decl_findings @ mut_findings

(* ---------------- public interface ---------------- *)

let analyze_files (files : (string * string) list) : program =
  let prog =
    {
      summaries = Hashtbl.create 512;
      globals = [];
      mutations = [];
      parse_failures = [];
    }
  in
  List.iter (fun (path, src) -> analyze_file prog ~path src) files;
  prog

let findings (prog : program) : finding list =
  let roots =
    Hashtbl.fold
      (fun _ s acc -> if s.root <> None then s :: acc else acc)
      prog.summaries []
    |> List.sort (fun a b -> String.compare a.key b.key)
  in
  let propagated = List.concat_map (propagate_root prog) roots in
  prog.parse_failures @ state_findings prog @ propagated
  |> List.sort_uniq Tool_common.compare_finding

let summary_of (prog : program) key = Hashtbl.find_opt prog.summaries key

let inventory (prog : program) : global list =
  List.sort
    (fun a b ->
      match String.compare a.g_module b.g_module with
      | 0 -> String.compare a.g_name b.g_name
      | c -> c)
    prog.globals

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let inventory_json (globals : global list) : string =
  let entry g =
    Printf.sprintf
      "    {\"module\": \"%s\", \"name\": \"%s\", \"path\": \"%s\", \
       \"line\": %d, \"kind\": \"%s\", \"class\": \"%s\", \"reason\": \
       \"%s\"}"
      (json_escape g.g_module) (json_escape g.g_name) (json_escape g.g_path)
      g.g_line (g_kind_name g.g_kind)
      (json_escape (class_name g.g_class))
      (json_escape (class_reason g.g_class))
  in
  Printf.sprintf "{\n  \"inventory\": [\n%s\n  ]\n}"
    (String.concat ",\n" (List.map entry globals))

let inventory_table (globals : global list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %-12s %-17s %s\n" "binding" "kind" "class"
       "where / why");
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-12s %-17s %s:%d%s\n"
           (g.g_module ^ "." ^ g.g_name)
           (g_kind_name g.g_kind)
           (class_name g.g_class)
           g.g_path g.g_line
           (match class_reason g.g_class with "" -> "" | r -> "  — " ^ r)))
    globals;
  Buffer.contents b

let analyze_dirs (dirs : string list) : program * int =
  let files = Tool_common.ml_files dirs in
  let prog =
    analyze_files
      (List.map (fun f -> (f, Tool_common.read_file f)) files)
  in
  (prog, List.length files)

let scan_dirs (dirs : string list) : finding list * int =
  let prog, n = analyze_dirs dirs in
  (findings prog, n)
