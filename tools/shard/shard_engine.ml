(* dk-shard: interprocedural shard-safety and determinism analysis
   over the whole lib/ source set.

   The two-pass machinery — per-function effect summaries, the
   approximated call graph with alias/closure resolution, callback
   carving, and the BFS that reports violations at entry points with
   the offending call chain — lives in {!Interproc} and is shared with
   dk-hot. This module supplies the shard-specific content:

   - the intrinsic effect sources (wall-clock reads, non-simulated
     randomness, hash-order-dependent iteration, blocking on the
     engine) and the registration surface that makes a callback a root
     ([Engine.at]/[Engine.after]/[Demi.watch]/[Token.watch] = Poll,
     [Fiber.spawn] = Fiber, the [Demi] API and [[@@shard.entry]] = Api);
   - the module-level mutable-state inventory, classified by
     [[@@shard.per_shard]] / [[@@shard.immutable]] / [[@@shard.tooling]]
     attributes (obs instrument handles are recognized automatically),
     with mutations of immutable-classified state reported at the write.

   Rule families:
     shard-state    unclassified module-level mutable state, and any
                    mutation of [[@@shard.immutable]]-classified state
     det-source     Clock / Random / HashOrder reachable from any root
     poll-blocking  Blocking reachable from a Poll or Fiber root *)

open Parsetree

type finding = Tool_common.finding

type effect_site = Interproc.effect_site = { via : string; at : int }

type summary = Interproc.summary = {
  key : string;
  s_path : string;
  def_line : int;
  attrs : attributes;
  mutable intrinsic : (string * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : string option;
}

type classification =
  | Per_shard of string
  | Immutable of string
  | Obs_handle
  | Tooling of string
  | Unclassified

type g_kind = GRef | GHashtbl | GContainer | GConstructed

type global = {
  g_module : string;
  g_name : string;
  g_path : string;
  g_line : int;
  g_kind : g_kind;
  g_class : classification;
}

type mutation = {
  m_module : string; (* target's module *)
  m_name : string;
  m_path : string; (* where the write happens *)
  m_line : int;
  m_how : string; (* ":=", "Hashtbl.replace", "field write", ... *)
}

type program = {
  ip : Interproc.program;
  globals : global list;
  mutations : mutation list;
}

(* ---------------- effect and root kinds (string-keyed) ---------------- *)

let k_clock = "clock"
let k_random = "random"
let k_hash_order = "hash-order"
let k_blocking = "blocking"
let r_api = "api"
let r_poll = "poll"
let r_fiber = "fiber"

let kind_noun = function
  | "clock" -> "wall-clock read"
  | "random" -> "non-simulated randomness"
  | "hash-order" -> "hash-order-dependent iteration"
  | "blocking" -> "blocking call"
  | k -> k

let root_noun = function
  | "api" -> "API entry"
  | "poll" -> "poll callback"
  | "fiber" -> "fiber body"
  | r -> r

(* ---------------- attributes ---------------- *)

let classification_of_attrs attrs =
  List.find_map
    (fun (a : attribute) ->
      match a.attr_name.txt with
      | "shard.per_shard" -> Some (Per_shard (Interproc.attr_string a))
      | "shard.immutable" -> Some (Immutable (Interproc.attr_string a))
      | "shard.tooling" -> Some (Tooling (Interproc.attr_string a))
      | _ -> None)
    attrs

(* ---------------- intrinsic effect sources ---------------- *)

(* [Det] (lib/util/det.ml) is the sanctioned sorted-iteration wrapper:
   its internal Hashtbl.fold is what makes everyone else's iteration
   deterministic, so it is exempt from the HashOrder intrinsic. *)
let intrinsic_of ~cur_module ~call:_ (m, f) : (string * string) option =
  match (m, f) with
  | "Unix", ("gettimeofday" | "time" | "localtime" | "gmtime" | "times") ->
      Some (k_clock, "Unix." ^ f)
  | "Sys", "time" -> Some (k_clock, "Sys.time")
  | "Random", _ -> Some (k_random, "Random." ^ f)
  | "Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values")
    when cur_module <> "Det" ->
      Some (k_hash_order, "Hashtbl." ^ f)
  | "Unix", ("sleep" | "sleepf" | "select") -> Some (k_blocking, "Unix." ^ f)
  | "Thread", "delay" -> Some (k_blocking, "Thread.delay")
  | "Engine", ("step" | "run_until" | "run_for" | "run")
    when cur_module <> "Engine" ->
      Some (k_blocking, "Engine." ^ f)
  | ( "Demi",
      ( "wait" | "wait_timeout" | "wait_any" | "wait_all" | "wait_next"
      | "blocking_push" | "blocking_pop" ) )
    when cur_module <> "Demi" ->
      Some (k_blocking, "Demi." ^ f)
  | _ -> None

(* Callback-registration surface: (module, fn), index of the callback
   among positional args, and what kind of root the callback becomes. *)
let registration_of (m, f) : (int * string) option =
  match (m, f) with
  | "Engine", ("at" | "after") -> Some (2, r_poll)
  | ("Demi" | "Token"), "watch" -> Some (2, r_poll)
  | "Fiber", "spawn" -> Some (1, r_fiber)
  | _ -> None

(* Container-mutating operations: (module, fn) whose first argument is
   the mutated structure. *)
let mutator_of (m, f) : bool =
  match (m, f) with
  | ( "Hashtbl",
      ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    ) ->
      true
  | "Queue", ("add" | "push" | "pop" | "take" | "clear" | "transfer") -> true
  | "Buffer", ("clear" | "reset") -> true
  | "Buffer", f when String.length f >= 4 && String.sub f 0 4 = "add_" -> true
  | "Atomic", ("set" | "incr" | "decr" | "exchange" | "compare_and_set") ->
      true
  | "Array", ("set" | "fill" | "blit") -> true
  | "Bytes", ("set" | "fill" | "blit") -> true
  | _ -> false

(* ---------------- global (module-level state) detection ---------------- *)

let global_kind_of_rhs (e : expression) : [ `Obs | `Kind of g_kind ] option =
  match (Interproc.strip e).pexp_desc with
  | Pexp_apply (fn, _) -> (
      match (Interproc.strip fn).pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match Interproc.last_two txt with
          | Some ("", "ref") -> Some (`Kind GRef)
          | Some ("Metrics", ("counter" | "gauge" | "hist")) -> Some `Obs
          | Some ("Hashtbl", "create") -> Some (`Kind GHashtbl)
          | Some (("Queue" | "Buffer" | "Atomic"), ("create" | "make"))
          | Some ("Array", ("make" | "init" | "of_list" | "copy"))
          | Some ("Bytes", ("create" | "make")) ->
              Some (`Kind GContainer)
          | Some (_, ("create" | "make")) -> Some (`Kind GConstructed)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---------------- the hooks wiring ---------------- *)

let hooks_for ~globals ~mutations : Interproc.hooks =
  {
    (Interproc.default_hooks ~tool:"dk-shard") with
    intrinsic_of;
    registration_of;
    binding_root =
      (fun ~cur_module ~name:_ attrs ->
        if cur_module = "Demi" || Interproc.has_attr "shard.entry" attrs then
          Some r_api
        else None);
    merge_root =
      (fun ~existing kind -> if existing = r_api then kind else existing);
    global_rhs = (fun e -> global_kind_of_rhs e <> None);
    mutator_of;
    on_toplevel =
      (fun ~cur_module ~path vb ->
        match (Interproc.strip_pat vb.pvb_pat).ppat_desc with
        | Ppat_var { txt = name; _ } -> (
            let line = Interproc.line_of vb.pvb_loc in
            match global_kind_of_rhs vb.pvb_expr with
            | Some `Obs ->
                globals :=
                  {
                    g_module = cur_module;
                    g_name = name;
                    g_path = path;
                    g_line = line;
                    g_kind = GConstructed;
                    g_class = Obs_handle;
                  }
                  :: !globals
            | Some (`Kind k) ->
                let cls =
                  match classification_of_attrs vb.pvb_attributes with
                  | Some c -> c
                  | None -> Unclassified
                in
                globals :=
                  {
                    g_module = cur_module;
                    g_name = name;
                    g_path = path;
                    g_line = line;
                    g_kind = k;
                    g_class = cls;
                  }
                  :: !globals
            | None -> ())
        | _ -> ());
    on_mutation =
      (fun ~key:_ ~target:(m, name) ~path ~line ~how ->
        mutations :=
          { m_module = m; m_name = name; m_path = path; m_line = line;
            m_how = how }
          :: !mutations);
  }

(* ---------------- pass 2: findings ---------------- *)

let propagate_root prog (root : summary) : finding list =
  let blocking_wanted =
    match root.root with
    | Some k -> k = r_poll || k = r_fiber
    | None -> false
  in
  let hits = Interproc.reach prog.ip root in
  let det_hit =
    List.find_opt
      (fun (h : Interproc.hit) ->
        List.mem h.h_kind [ k_clock; k_random; k_hash_order ])
      hits
  in
  let blk_hit =
    if blocking_wanted then
      List.find_opt (fun (h : Interproc.hit) -> h.h_kind = k_blocking) hits
    else None
  in
  let mk rule (h : Interproc.hit) =
    {
      Tool_common.path = root.s_path;
      line = root.def_line;
      rule;
      message =
        Printf.sprintf "%s reachable from %s %s: %s -> %s (%s:%d)%s"
          (kind_noun h.h_kind)
          (root_noun (Option.value root.root ~default:r_api))
          root.key h.h_chain h.h_site.via h.h_sum.s_path h.h_site.at
          (if h.h_kind = k_blocking then
             " — an engine poll iteration must not block outside the \
              virtual clock"
           else
             " — shard replay requires identical output for identical \
              inputs");
    }
  in
  List.filter_map
    (fun x -> x)
    [ Option.map (mk "det-source") det_hit;
      Option.map (mk "poll-blocking") blk_hit ]

let g_kind_name = function
  | GRef -> "ref"
  | GHashtbl -> "hashtbl"
  | GContainer -> "container"
  | GConstructed -> "constructed"

let class_name = function
  | Per_shard _ -> "per-shard"
  | Immutable _ -> "shared-immutable"
  | Obs_handle -> "obs-handle"
  | Tooling _ -> "tooling"
  | Unclassified -> "UNCLASSIFIED"

let class_reason = function
  | Per_shard r | Immutable r | Tooling r -> r
  | Obs_handle | Unclassified -> ""

let state_findings prog : finding list =
  let decl_findings =
    List.filter_map
      (fun g ->
        match g.g_class with
        | Unclassified ->
            Some
              {
                Tool_common.path = g.g_path;
                line = g.g_line;
                rule = "shard-state";
                message =
                  Printf.sprintf
                    "module-level mutable state %s.%s (%s): unclassified \
                     shared state breaks shard isolation — move it behind a \
                     constructor-passed record, or mark it [@@shard.per_shard \
                     \"why\"] / [@@shard.immutable \"why\"], or allowlist \
                     with a justifying comment"
                    g.g_module g.g_name (g_kind_name g.g_kind);
              }
        | _ -> None)
      prog.globals
  in
  let immutable g = match g.g_class with Immutable _ -> true | _ -> false in
  let mut_findings =
    List.filter_map
      (fun m ->
        match
          List.find_opt
            (fun g -> g.g_module = m.m_module && g.g_name = m.m_name)
            prog.globals
        with
        | Some g when immutable g ->
            Some
              {
                Tool_common.path = m.m_path;
                line = m.m_line;
                rule = "shard-state";
                message =
                  Printf.sprintf
                    "mutation (%s) of %s.%s, which is classified \
                     [@@shard.immutable]: shared-immutable state must never \
                     be written after module initialization (%s:%d)"
                    m.m_how m.m_module m.m_name g.g_path g.g_line;
              }
        | _ -> None)
      prog.mutations
  in
  decl_findings @ mut_findings

(* ---------------- public interface ---------------- *)

let analyze_files (files : (string * string) list) : program =
  let globals = ref [] and mutations = ref [] in
  let hooks = hooks_for ~globals ~mutations in
  let ip = Interproc.analyze_files hooks files in
  { ip; globals = !globals; mutations = !mutations }

let findings (prog : program) : finding list =
  let roots = Interproc.roots prog.ip in
  let propagated = List.concat_map (propagate_root prog) roots in
  prog.ip.parse_failures @ state_findings prog @ propagated
  |> List.sort_uniq Tool_common.compare_finding

let summary_of (prog : program) key = Interproc.summary_of prog.ip key

let inventory (prog : program) : global list =
  List.sort
    (fun a b ->
      match String.compare a.g_module b.g_module with
      | 0 -> String.compare a.g_name b.g_name
      | c -> c)
    prog.globals

let inventory_json (globals : global list) : string =
  let esc = Tool_common.json_escape in
  let entry g =
    Printf.sprintf
      "    {\"module\": \"%s\", \"name\": \"%s\", \"path\": \"%s\", \
       \"line\": %d, \"kind\": \"%s\", \"class\": \"%s\", \"reason\": \
       \"%s\"}"
      (esc g.g_module) (esc g.g_name) (esc g.g_path) g.g_line
      (g_kind_name g.g_kind)
      (esc (class_name g.g_class))
      (esc (class_reason g.g_class))
  in
  Printf.sprintf "{\n  \"inventory\": [\n%s\n  ]\n}"
    (String.concat ",\n" (List.map entry globals))

let inventory_table (globals : global list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %-12s %-17s %s\n" "binding" "kind" "class"
       "where / why");
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-12s %-17s %s:%d%s\n"
           (g.g_module ^ "." ^ g.g_name)
           (g_kind_name g.g_kind)
           (class_name g.g_class)
           g.g_path g.g_line
           (match class_reason g.g_class with "" -> "" | r -> "  — " ^ r)))
    globals;
  Buffer.contents b

let analyze_dirs (dirs : string list) : program * int =
  let files = Tool_common.ml_files dirs in
  let prog =
    analyze_files (List.map (fun f -> (f, Tool_common.read_file f)) files)
  in
  (prog, List.length files)

let scan_dirs (dirs : string list) : finding list * int =
  let prog, n = analyze_dirs dirs in
  (findings prog, n)
