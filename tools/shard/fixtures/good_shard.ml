(* A clean shard: state lives in a constructor-built record, randomness
   comes from the seeded simulation Rng, table iteration goes through
   the sorted Det wrappers, and registered callbacks complete without
   re-entering the engine. Nothing here may be flagged. *)

type t = {
  rng : Dk_sim.Rng.t;
  flows : (int, int) Hashtbl.t;
  mutable serviced : int;
}

let create seed =
  { rng = Dk_sim.Rng.create seed; flows = Hashtbl.create 16; serviced = 0 }

let m_serviced = Dk_obs.Metrics.counter "good_shard.serviced"

let jitter t bound = Dk_sim.Rng.int t.rng bound

let snapshot t =
  Dk_util.Det.fold_sorted ~compare:Int.compare
    (fun flow bytes acc -> (flow, bytes) :: acc)
    t.flows []

let service t flow =
  t.serviced <- t.serviced + 1;
  Dk_obs.Metrics.incr m_serviced;
  Hashtbl.replace t.flows flow (jitter t 64)

let arm t engine flow =
  ignore (Dk_sim.Engine.at engine 10L (fun () -> service t flow))
[@@shard.entry]
