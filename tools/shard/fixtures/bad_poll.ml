(* Blocking inside registered callbacks. A callback scheduled with
   [Engine.at] runs inside a poll iteration of the engine: re-entering
   the engine ([Demi.wait] steps it) or sleeping the host thread
   ([Unix.sleep]) stalls every queue the shard owns. Reported at the
   closure, where the callback is registered. *)

let arm engine demi tok =
  ignore
    (Dk_sim.Engine.at engine 10L (fun () -> (* FLAG poll-blocking *)
         ignore (Demi.wait demi tok)))

let spawn_worker sched =
  Fiber.spawn sched (fun () -> (* FLAG poll-blocking *)
      Unix.sleep 1)
