(* Tooling-classified state: a sanitizer/test capture channel that is
   empty outside instrumented runs and never consulted on the packet
   path. [@@shard.tooling "why"] exempts it from the shard-state rule
   the same way [@@shard.per_shard] does, while the inventory still
   records it under its own class so `demi shardcheck` can count it. *)

let trace_sink : (string -> unit) option ref = ref None
[@@shard.tooling "test-harness trace tap; None outside tests"]

let captured : string list ref = ref []
[@@shard.tooling "per-run capture buffer drained by the test harness"]

let emit line =
  (match !trace_sink with Some f -> f line | None -> ());
  captured := line :: !captured
