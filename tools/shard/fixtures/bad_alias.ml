(* Hiding the clock behind a module alias must not defeat the
   analysis: [module U = Unix] resolves back to [Unix] before the
   intrinsic check. *)

module U = Unix

let helper () = U.gettimeofday ()

let deadline_ns () = int_of_float (helper () *. 1e9) (* FLAG det-source *)
[@@shard.entry]
