(* A shard entry point reading the wall clock directly: the result
   depends on when the run happens, not on the inputs, so replay
   diverges. Reported at the entry's definition. *)

let stamp () = Unix.gettimeofday () (* FLAG det-source *)
[@@shard.entry]
