(* Cross-module mutation of state the owner classified
   [@@shard.immutable]: the write invalidates the classification that
   lets every shard read the table without coordination. Reported at
   the mutation site. *)

let rename op name =
  Hashtbl.replace Good_mut_decl.opcode_names op name (* FLAG shard-state *)
