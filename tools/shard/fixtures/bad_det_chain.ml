(* The nondeterminism is two calls away from the entry point: only the
   interprocedural pass can see it. The finding lands on the entry's
   definition, with the chain in the message. *)

let pick_backoff () = Random.int 100

let jittered_delay base = base + pick_backoff ()

let submit ~base = jittered_delay base (* FLAG det-source *)
[@@shard.entry]
