(* Unclassified module-level mutable state: every binding here is
   visible to all shards at once and carries no [@@shard.*] attribute,
   so each declaration is a shard-state finding. *)

let hits = ref 0 (* FLAG shard-state *)

let sessions : (int, string) Hashtbl.t = Hashtbl.create 16 (* FLAG shard-state *)

let backlog = Queue.create () (* FLAG shard-state *)

let bump () =
  incr hits;
  Queue.add !hits backlog;
  Hashtbl.replace sessions !hits "session"
