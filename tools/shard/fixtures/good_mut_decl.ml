(* A classified shared table: immutable after module initialization,
   so every shard may read it concurrently. The declaration itself is
   clean — [bad_mut_use.ml] supplies the illegal write. *)

let opcode_names : (int, string) Hashtbl.t = Hashtbl.create 8
[@@shard.immutable "opcode decode table, filled below at module init only"]

let () =
  Hashtbl.replace opcode_names 0 "push";
  Hashtbl.replace opcode_names 1 "pop"

let name_of op = Hashtbl.find_opt opcode_names op
