(** dk-shard: interprocedural shard-safety and determinism analysis.

    Pass 1 computes a per-function effect summary for every [.ml] it is
    given (parsed with compiler-libs, no typechecking); pass 2
    propagates the summaries over an approximated call graph so
    violations are reported at the shard-boundary entry points with the
    offending call chain in the diagnostic.

    Rule families:
    - [shard-state]: module-level mutable bindings must be classified
      [[@@shard.per_shard "why"]] or [[@@shard.immutable "why"]] (obs
      instrument handles are recognized automatically), and
      immutable-classified state must never be mutated.
    - [det-source]: no wall-clock read, non-{!Dk_sim.Rng} randomness,
      or hash-order-dependent iteration may be reachable from a
      datapath entry point.
    - [poll-blocking]: nothing reachable from an engine poll callback
      or fiber body may block outside the virtual clock.

    Entry points (roots): the toplevel functions of module [Demi] and
    anything marked [[@@shard.entry]] (Api); callbacks registered via
    [Engine.at]/[Engine.after]/[Demi.watch]/[Token.watch] (Poll); and
    [Fiber.spawn] bodies (Fiber). [det-source] applies to all roots,
    [poll-blocking] to Poll and Fiber roots. *)

type finding = Tool_common.finding

type effect_kind = Clock | Random | HashOrder | Blocking | MutGlobal

type effect_site = { via : string; at : int }

type root_kind = Api | Poll | Fiber

type summary = {
  key : string;
  s_path : string;
  def_line : int;
  mutable intrinsic : (effect_kind * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : root_kind option;
}
(** One function's effect summary. [key] is ["Module.fn"] for toplevel
    functions, ["Module.fn.local"] for let-bound local functions and
    ["Module.fn.<cb@N>"] for a callback closure registered on line
    [N]. [unknown] is set when the body calls through a value the
    analysis cannot resolve (a parameter, a stored closure, a record
    field); it is tracked for honesty but deliberately not reported —
    flagging every [t.on_event ()] callback would drown the signal. *)

type classification =
  | Per_shard of string  (** mutable by design, one instance per shard *)
  | Immutable of string  (** written only during module initialization *)
  | Obs_handle  (** Metrics counter/gauge/hist registration *)
  | Tooling of string
      (** sanitizer/debug capture channel — analysis and test plumbing,
          not datapath state; never consulted on the packet path *)
  | Unclassified

type g_kind = GRef | GHashtbl | GContainer | GConstructed

type global = {
  g_module : string;
  g_name : string;
  g_path : string;
  g_line : int;
  g_kind : g_kind;
  g_class : classification;
}

type program

val analyze_files : (string * string) list -> program
(** [(path, source)] pairs, analyzed together as one program — edges
    may cross files. *)

val analyze_dirs : string list -> program * int
(** Walk directories (via {!Tool_common.ml_files}), analyze every
    [.ml]; also returns the number of files read. *)

val findings : program -> finding list
(** All three rule families plus [parse-error], sorted and deduplicated
    by (path, line, rule). *)

val scan_dirs : string list -> finding list * int
(** [analyze_dirs] followed by [findings]; the driver entry point. *)

val summary_of : program -> string -> summary option
(** Look up one function's summary by key (for tests and debugging). *)

val inventory : program -> global list
(** The shared-state inventory: every module-level global found,
    sorted by module then name. *)

val inventory_json : global list -> string
val inventory_table : global list -> string
