(** dk-shard: interprocedural shard-safety and determinism analysis.

    The two-pass propagation machinery (per-function effect summaries,
    call-graph BFS, callback carving, alias resolution) is
    {!Interproc}, shared with dk-hot; this module supplies the
    shard-specific rules and the shared-state inventory.

    Rule families:
    - [shard-state]: module-level mutable bindings must be classified
      [[@@shard.per_shard "why"]] or [[@@shard.immutable "why"]] (obs
      instrument handles are recognized automatically), and
      immutable-classified state must never be mutated.
    - [det-source]: no wall-clock read, non-{!Dk_sim.Rng} randomness,
      or hash-order-dependent iteration may be reachable from a
      datapath entry point.
    - [poll-blocking]: nothing reachable from an engine poll callback
      or fiber body may block outside the virtual clock.

    Entry points (roots, as {!Interproc.summary} root kinds): the
    toplevel functions of module [Demi] and anything marked
    [[@@shard.entry]] (["api"]); callbacks registered via
    [Engine.at]/[Engine.after]/[Demi.watch]/[Token.watch] (["poll"]);
    and [Fiber.spawn] bodies (["fiber"]). [det-source] applies to all
    roots, [poll-blocking] to poll and fiber roots. *)

type finding = Tool_common.finding

type effect_site = Interproc.effect_site = { via : string; at : int }

type summary = Interproc.summary = {
  key : string;
  s_path : string;
  def_line : int;
  attrs : Parsetree.attributes;
  mutable intrinsic : (string * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : string option;
}
(** Re-exported from {!Interproc}; effect kinds here are ["clock"],
    ["random"], ["hash-order"], ["blocking"], ["mut-global"], root
    kinds ["api"], ["poll"], ["fiber"]. *)

type classification =
  | Per_shard of string  (** mutable by design, one instance per shard *)
  | Immutable of string  (** written only during module initialization *)
  | Obs_handle  (** Metrics counter/gauge/hist registration *)
  | Tooling of string
      (** sanitizer/debug capture channel — analysis and test plumbing,
          not datapath state; never consulted on the packet path *)
  | Unclassified

type g_kind = GRef | GHashtbl | GContainer | GConstructed

type global = {
  g_module : string;
  g_name : string;
  g_path : string;
  g_line : int;
  g_kind : g_kind;
  g_class : classification;
}

type program

val analyze_files : (string * string) list -> program
(** [(path, source)] pairs, analyzed together as one program — edges
    may cross files. *)

val analyze_dirs : string list -> program * int
(** Walk directories (via {!Tool_common.ml_files}), analyze every
    [.ml]; also returns the number of files read. *)

val findings : program -> finding list
(** All three rule families plus [parse-error], sorted and deduplicated
    by (path, line, rule). *)

val scan_dirs : string list -> finding list * int
(** [analyze_dirs] followed by [findings]; the driver entry point. *)

val summary_of : program -> string -> summary option
(** Look up one function's summary by key (for tests and debugging). *)

val inventory : program -> global list
(** The shared-state inventory: every module-level global found,
    sorted by module then name. *)

val inventory_json : global list -> string
val inventory_table : global list -> string
