(* dk-hot: interprocedural hot-path cost analysis over the whole lib/
   source set.

   The paper's core claim is that the datapath budget is ~1000 cycles
   per I/O: an OS that wants to interpose on a kernel-bypass datapath
   can afford no allocation, no unbounded walks and no structural
   hashing on the per-operation path. dk-hot enforces that budget
   statically. The two-pass machinery — per-function effect summaries,
   the approximated call graph, the BFS that reports violations at
   entry points with the offending call chain — lives in {!Interproc}
   and is shared with dk-shard. This module supplies the cost-specific
   content:

   - the hot roots: the NIC/RDMA delivery and submit surface, the Demi
     per-op API, the doorbell flush path, the engine step loop, plus
     anything marked [[@@hot]];
   - the intrinsic cost sources, in three families:
       alloc:*  per-op heap allocation (closure capture, tuple/list/
                record construction, Bytes/String/Array builders,
                format strings) unless pooled or classified
                [[@@hot.alloc "why"]]
       scan:*   iteration or sorting over unbounded collections
                (Hashtbl walks, Det sorted iteration, List traversal)
       poly:*   polymorphic compare/hash on non-immediate keys
                (Hashtbl.hash, bare [compare], tuple-keyed tables,
                structural [=] on constructed values)

   Rule families:
     hot-alloc       alloc:* reachable from a hot root
     hot-complexity  scan:*  reachable from a hot root
     hot-poly        poly:*  reachable from a hot root
     hot-annotation  [@@hot.alloc] with no why, or exempting nothing

   Deliberate precision boundaries (documented, not bugs): boxed
   int64 arithmetic is not flagged (virtual-time timestamps are the
   sim's currency, not datapath payload); variant construction
   ([Some x], [Ok x]) is not flagged outside [=] comparisons; and
   [Queue.add]/[Hashtbl.replace] cell allocation is not flagged — the
   sim's queues stand in for preallocated descriptor rings, and
   charging every enqueue would drown the signal in annotations. A
   capture-free lambda is a static closure, allocated once at module
   init, so only capturing lambdas are charged. *)

open Parsetree

type finding = Tool_common.finding

type effect_site = Interproc.effect_site = { via : string; at : int }

type summary = Interproc.summary = {
  key : string;
  s_path : string;
  def_line : int;
  attrs : attributes;
  mutable intrinsic : (string * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : string option;
}

(* ---------------- roots ---------------- *)

let r_rx = "rx-delivery"
let r_tx = "tx-submit"
let r_api = "demi-api"
let r_db = "doorbell-flush"
let r_step = "engine-step"
let r_annot = "annotated"

(* The per-operation surface. Everything here runs once (or more) per
   packet, per completion or per queue token — the paper's 1000-cycle
   budget applies to exactly these functions and their callees. *)
let root_table =
  [
    (("Nic", "receive"), r_rx);
    (("Nic", "poll_rx"), r_rx);
    (("Nic", "transmit"), r_tx);
    (("Nic", "transmit_many"), r_tx);
    (("Rdma", "post_recv"), r_rx);
    (("Rdma", "poll_recv_cq"), r_rx);
    (("Rdma", "poll_send_cq"), r_rx);
    (("Rdma", "post_send"), r_tx);
    (("Rdma", "post_send_many"), r_tx);
    (("Rdma", "post_read"), r_tx);
    (("Rdma", "post_write"), r_tx);
    (("Demi", "push"), r_api);
    (("Demi", "push_batch"), r_api);
    (("Demi", "pop"), r_api);
    (("Demi", "wait_next"), r_api);
    (("Doorbell", "submit"), r_db);
    (("Doorbell", "flush"), r_db);
    (("Doorbell", "group"), r_db);
    (("Engine", "step"), r_step);
    (("Engine", "step_group"), r_step);
  ]

let binding_root ~cur_module ~name attrs =
  match List.assoc_opt (cur_module, name) root_table with
  | Some k -> Some k
  | None -> if Interproc.has_attr "hot" attrs then Some r_annot else None

(* ---------------- intrinsic cost sources (by name) ---------------- *)

(* [Det] (lib/util/det.ml) is the sanctioned deterministic-iteration
   wrapper; its internals are exempt because every call SITE of
   [Det.iter_sorted] & co. is charged instead — the sort is the
   caller's per-op cost, wherever it hides. *)
let intrinsic_of ~cur_module ~call (m, f) : (string * string) option =
  let k kind = Some (kind, if m = "" then f else m ^ "." ^ f) in
  match (m, f) with
  (* alloc: a fresh heap block per call *)
  | ( "Bytes",
      ( "create" | "make" | "init" | "copy" | "sub" | "extend" | "cat"
      | "concat" | "of_string" | "to_string" | "sub_string" ) ) ->
      k "alloc:bytes"
  | ( "String",
      ( "make" | "init" | "sub" | "concat" | "cat" | "map" | "mapi"
      | "split_on_char" | "trim" | "escaped" | "uppercase_ascii"
      | "lowercase_ascii" | "capitalize_ascii" | "of_seq" ) ) ->
      k "alloc:string"
  | ( "Array",
      ( "make" | "create_float" | "init" | "of_list" | "to_list" | "copy"
      | "append" | "sub" | "concat" | "map" | "mapi" | "of_seq" | "split"
      | "combine" ) ) ->
      k "alloc:array"
  | ( "List",
      ( "map" | "mapi" | "rev_map" | "init" | "filter" | "filter_map"
      | "partition" | "append" | "concat" | "concat_map" | "flatten" | "rev"
      | "rev_append" | "of_seq" | "split" | "combine" | "cons" | "map2"
      | "merge" ) ) ->
      k "alloc:list"
  | ("Printf" | "Format"), ("sprintf" | "asprintf") -> k "alloc:format"
  | "Buffer", ("create" | "contents" | "to_bytes" | "sub") -> k "alloc:buffer"
  | ("Queue" | "Stack"), "create" | "Hashtbl", ("create" | "copy") ->
      k "alloc:container"
  | "Option", ("map" | "bind" | "join" | "to_list" | "some") ->
      k "alloc:option"
  | "Result", ("map" | "bind" | "map_error") -> k "alloc:option"
  | "", "ref" when call -> k "alloc:ref"
  | "", "^" when call -> k "alloc:string"
  | "", "@" when call -> k "alloc:list"
  (* scan: work proportional to a collection the op did not create *)
  | ( "Hashtbl",
      ( "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values"
      | "filter_map_inplace" ) )
    when cur_module <> "Det" ->
      k "scan:hashtbl"
  | "Det", ("iter_sorted" | "fold_sorted" | "keys_sorted" | "bindings_sorted")
    when cur_module <> "Det" ->
      k "scan:det-sort"
  | ( "List",
      ( "iter" | "iteri" | "fold_left" | "fold_right" | "for_all" | "exists"
      | "mem" | "memq" | "assoc" | "assoc_opt" | "mem_assoc" | "find"
      | "find_opt" | "find_map" | "length" | "nth" | "nth_opt"
      | "compare_lengths" | "iter2" | "fold_left2" | "for_all2" | "exists2" )
    ) ->
      k "scan:list"
  | ("List" | "Array"), ("sort" | "stable_sort" | "sort_uniq" | "fast_sort")
    ->
      k "scan:sort"
  | "Queue", ("iter" | "fold" | "copy" | "transfer" | "to_seq") ->
      k "scan:queue"
  | "Seq", ("iter" | "iteri" | "fold_left" | "length") -> k "scan:seq"
  (* poly: structural hash/compare walks the value every call *)
  | "Hashtbl", "hash" -> k "poly:hash"
  | ("" | "Stdlib"), "compare" -> k "poly:compare"
  | _ -> None

(* ---------------- shape-based effects ---------------- *)

(* Bare idents that are Stdlib values, not captures: referencing them
   inside a lambda does not force a closure environment. *)
let stdlib_names =
  [
    "ignore"; "not"; "fst"; "snd"; "min"; "max"; "abs"; "succ"; "pred";
    "compare"; "string_of_int"; "int_of_string"; "string_of_float";
    "float_of_int"; "int_of_float"; "int_of_char"; "char_of_int"; "truncate";
    "print_endline"; "print_string"; "prerr_endline"; "failwith";
    "invalid_arg"; "raise"; "raise_notrace"; "exit"; "incr"; "decr"; "ref";
    "max_int"; "min_int"; "infinity"; "nan";
  ]

(* Free variables of a lambda, over-approximating the bound set (every
   pattern variable anywhere in the subtree counts as bound, scoping
   ignored) so shadowing can only hide a capture, never invent one. A
   lambda with no captures is a static closure — allocated once at
   module initialization — and is deliberately not charged. *)
let captures ~toplevel (e : expression) : string list =
  let bound = Hashtbl.create 16 and used = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              Hashtbl.replace bound txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } ->
              Hashtbl.replace used x ()
          | Pexp_let (_, vbs, _) ->
              (* let-bound names are bound even for non-pattern walks *)
              List.iter
                (fun vb ->
                  match (Interproc.strip_pat vb.pvb_pat).ppat_desc with
                  | Ppat_var { txt; _ } -> Hashtbl.replace bound txt ()
                  | _ -> ())
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  Hashtbl.fold
    (fun x () acc ->
      if
        Hashtbl.mem bound x || toplevel x || Interproc.is_operator x
        || List.mem x stdlib_names
      then acc
      else x :: acc)
    used []
  |> List.sort String.compare

let positional args =
  List.filter_map
    (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

let fn_name ~resolve (fn : expression) =
  match (Interproc.strip fn).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Interproc.last_two txt with
      | Some (m, f) -> Some ((if m = "" then "" else resolve m), f)
      | None -> None)
  | _ -> None

let hashtbl_keyed_ops =
  [ "add"; "replace"; "find"; "find_opt"; "find_all"; "mem"; "remove" ]

let is_tuple (e : expression) =
  match (Interproc.strip e).pexp_desc with Pexp_tuple _ -> true | _ -> false

(* A non-immediate operand of [=]: comparing it walks structure. *)
let structured (e : expression) =
  match (Interproc.strip e).pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | _ -> false

let expr_effects ~cur_module:_ ~resolve ~toplevel (e : expression) :
    (string * string * int) list =
  let line = Interproc.line_of e.pexp_loc in
  match e.pexp_desc with
  | Pexp_tuple _ -> [ ("alloc:tuple", "tuple construction", line) ]
  | Pexp_record _ -> [ ("alloc:record", "record construction", line) ]
  | Pexp_array _ -> [ ("alloc:array", "array literal", line) ]
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) ->
      [ ("alloc:list", "list cons", line) ]
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> (
      (* only reached for lambdas that are values the body constructs:
         the engine hides the fun-layer spine of named bindings *)
      match captures ~toplevel e with
      | [] -> []
      | c :: _ ->
          [ ("alloc:closure", Printf.sprintf "closure capturing %s" c, line) ]
      )
  | Pexp_let (_, vbs, body) ->
      (* let-bound local functions become child summaries in the
         engine, so this node is where their closure allocation is
         charged to the enclosing function *)
      let names =
        List.filter_map
          (fun vb ->
            match (Interproc.strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt; _ } -> Some txt
            | _ -> None)
          vbs
      in
      let closure_effects =
        List.filter_map
          (fun vb ->
            match (Interproc.strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt = name; _ } when Interproc.is_fun vb.pvb_expr
              -> (
                match
                  List.filter
                    (fun c -> not (List.mem c names))
                    (captures ~toplevel vb.pvb_expr)
                with
                | [] -> None
                | c :: _ ->
                    Some
                      ( "alloc:closure",
                        Printf.sprintf "local fun %s capturing %s" name c,
                        Interproc.line_of vb.pvb_loc ))
            | _ -> None)
          vbs
      in
      let tuple_names =
        List.filter_map
          (fun vb ->
            match (Interproc.strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt; _ } when is_tuple vb.pvb_expr -> Some txt
            | _ -> None)
          vbs
      in
      let key_effects =
        if tuple_names = [] then []
        else begin
          (* a tuple bound to a name and then used as a Hashtbl key is
             the same poly hash, one hop removed *)
          let acc = ref [] in
          let it =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun it e ->
                  (match e.pexp_desc with
                  | Pexp_apply (fn, args) -> (
                      match fn_name ~resolve fn with
                      | Some ("Hashtbl", op)
                        when List.mem op hashtbl_keyed_ops -> (
                          match positional args with
                          | _ :: key :: _ -> (
                              match (Interproc.strip key).pexp_desc with
                              | Pexp_ident { txt = Longident.Lident x; _ }
                                when List.mem x tuple_names ->
                                  acc :=
                                    ( "poly:flow-key",
                                      Printf.sprintf
                                        "Hashtbl.%s keyed by tuple %s" op x,
                                      Interproc.line_of e.pexp_loc )
                                    :: !acc
                              | _ -> ())
                          | _ -> ())
                      | _ -> ())
                  | _ -> ());
                  Ast_iterator.default_iterator.expr it e);
            }
          in
          it.expr it body;
          !acc
        end
      in
      closure_effects @ key_effects
  | Pexp_apply (fn, args) -> (
      let pos = positional args in
      match fn_name ~resolve fn with
      | Some ("", ("=" | "<>")) when List.exists structured pos ->
          [ ("poly:structural-eq", "structural (=) on constructed value",
             line) ]
      | Some ("Hashtbl", op) when List.mem op hashtbl_keyed_ops -> (
          match pos with
          | _ :: key :: _ when is_tuple key ->
              [ ("poly:flow-key", "Hashtbl." ^ op ^ " with tuple key", line) ]
          | _ -> [])
      | _ -> [])
  | _ -> []

(* ---------------- the hooks wiring ---------------- *)

let hooks : Interproc.hooks =
  {
    (Interproc.default_hooks ~tool:"dk-hot") with
    intrinsic_of;
    expr_effects;
    binding_root;
  }

(* ---------------- program and annotation audit ---------------- *)

type program = { ip : Interproc.program; annotations : finding list }

let alloc_kind k = Tool_common.starts_with ~prefix:"alloc:" k

(* [@@hot.alloc "why"] classifies a function's own allocations as
   deliberate (pool refill, sim bookkeeping, API-mandated handle). The
   audit runs before the exemption so a why-less or do-nothing
   annotation still fails: an annotation that exempts nothing is a
   stale claim about the code and has to go. *)
let audit_annotations (ip : Interproc.program) : finding list =
  List.filter_map
    (fun (s : summary) ->
      match Interproc.find_attr "hot.alloc" s.attrs with
      | None -> None
      | Some a ->
          let why = Interproc.attr_string a in
          let allocs = List.filter (fun (k, _) -> alloc_kind k) s.intrinsic in
          s.intrinsic <-
            List.filter (fun (k, _) -> not (alloc_kind k)) s.intrinsic;
          if why = "" then
            Some
              {
                Tool_common.path = s.s_path;
                line = s.def_line;
                rule = "hot-annotation";
                message =
                  Printf.sprintf
                    "[@@hot.alloc] on %s needs a reason: write [@@hot.alloc \
                     \"why this allocation is deliberate\"]"
                    s.key;
              }
          else if allocs = [] then
            Some
              {
                Tool_common.path = s.s_path;
                line = s.def_line;
                rule = "hot-annotation";
                message =
                  Printf.sprintf
                    "[@@hot.alloc] on %s exempts nothing: the function \
                     performs no tracked allocation — remove the annotation \
                     (callee allocations are classified at the callee)"
                    s.key;
              }
          else None)
    (Interproc.all_summaries ip)

let analyze_files (files : (string * string) list) : program =
  let ip = Interproc.analyze_files hooks files in
  let annotations = audit_annotations ip in
  { ip; annotations }

let analyze_dirs (dirs : string list) : program * int =
  let files = Tool_common.ml_files dirs in
  let prog =
    analyze_files (List.map (fun f -> (f, Tool_common.read_file f)) files)
  in
  (prog, List.length files)

(* ---------------- pass 2: findings ---------------- *)

let family_of kind =
  if Tool_common.starts_with ~prefix:"alloc:" kind then
    Some ("hot-alloc", "per-op heap allocation")
  else if Tool_common.starts_with ~prefix:"scan:" kind then
    Some ("hot-complexity", "unbounded per-op scan")
  else if Tool_common.starts_with ~prefix:"poly:" kind then
    Some ("hot-poly", "polymorphic compare/hash")
  else None

let advice = function
  | "hot-alloc" ->
      "allocate from the pool (Dk_mem.Pool / Manager.alloc_rx) or classify \
       the allocating function [@@hot.alloc \"why\"]"
  | "hot-complexity" ->
      "a hot operation must not walk connection- or token-indexed \
       collections; keep a direct index or cache the result off the hot path"
  | _ ->
      "polymorphic compare/hash walks the structure on every call; pack an \
       int key or use a monomorphic compare"

(* One finding per rule family per root, at the root's definition, with
   the shortest witness chain — the budget is the root's, wherever in
   its callees the cost hides. *)
let propagate_root prog (root : summary) : finding list =
  let hits = Interproc.reach prog.ip root in
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (h : Interproc.hit) ->
      match family_of h.h_kind with
      | Some (rule, noun) when not (Hashtbl.mem seen rule) ->
          Hashtbl.replace seen rule ();
          Some
            {
              Tool_common.path = root.s_path;
              line = root.def_line;
              rule;
              message =
                Printf.sprintf "%s reachable from %s root %s: %s -> %s \
                                (%s:%d) — %s"
                  noun
                  (Option.value root.root ~default:r_annot)
                  root.key h.h_chain h.h_site.via h.h_sum.s_path h.h_site.at
                  (advice rule);
            }
      | _ -> None)
    hits

let findings (prog : program) : finding list =
  let roots = Interproc.roots prog.ip in
  prog.ip.parse_failures @ prog.annotations
  @ List.concat_map (propagate_root prog) roots
  |> List.sort_uniq Tool_common.compare_finding

let scan_dirs (dirs : string list) : finding list * int =
  let prog, n = analyze_dirs dirs in
  (findings prog, n)

let summary_of (prog : program) key = Interproc.summary_of prog.ip key

(* ---------------- hot-root inventory ---------------- *)

type root_info = {
  r_key : string;
  r_kind : string;
  r_path : string;
  r_line : int;
  r_reached : int;  (* analyzed functions reachable from this root *)
}

let inventory (prog : program) : root_info list =
  let reached (root : summary) =
    let visited = Hashtbl.create 64 in
    let rec go key =
      if not (Hashtbl.mem visited key) then
        match Interproc.summary_of prog.ip key with
        | Some s ->
            Hashtbl.replace visited key ();
            List.iter go s.calls
        | None -> ()
    in
    go root.key;
    Hashtbl.length visited
  in
  Interproc.roots prog.ip
  |> List.map (fun (s : summary) ->
         {
           r_key = s.key;
           r_kind = Option.value s.root ~default:r_annot;
           r_path = s.s_path;
           r_line = s.def_line;
           r_reached = reached s;
         })

let inventory_json (roots : root_info list) : string =
  let esc = Tool_common.json_escape in
  let entry r =
    Printf.sprintf
      "    {\"root\": \"%s\", \"kind\": \"%s\", \"path\": \"%s\", \"line\": \
       %d, \"reached\": %d}"
      (esc r.r_key) (esc r.r_kind) (esc r.r_path) r.r_line r.r_reached
  in
  Printf.sprintf "{\n  \"hot_roots\": [\n%s\n  ]\n}"
    (String.concat ",\n" (List.map entry roots))

let inventory_table (roots : root_info list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-32s %-16s %-8s %s\n" "hot root" "kind" "reached"
       "where");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %-16s %-8d %s:%d\n" r.r_key r.r_kind
           r.r_reached r.r_path r.r_line))
    roots;
  Buffer.contents b
