(* The pooled fast path mutates preallocated storage: no fresh heap
   blocks, no walks, no structural hashing — nothing to flag. *)

type ring = { mutable head : int; mutable used : int; slots : bytes }

let stage t b off len =
  Bytes.blit b off t.slots t.head len;
  t.head <- t.head + len;
  t.used <- t.used + 1
  [@@hot]

let ack t n = t.used <- t.used - n
  [@@hot]
