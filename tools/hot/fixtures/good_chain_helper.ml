(* Not a root and never [@@hot]: its own lines stay clean. The string
   append is charged at whichever hot root reaches it (see
   bad_alloc_chain.ml). *)

let render seq = string_of_int seq ^ "-frame"
