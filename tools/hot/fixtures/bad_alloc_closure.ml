(* A hot root must not build a capturing closure per operation: the
   environment is a fresh heap block on every call. A capture-free
   lambda would be a static closure and stay unflagged. *)

let sink : (unit -> unit) ref = ref (fun () -> ())
let register cb = sink := cb

let transmit t frame =                                (* FLAG hot-alloc *)
  register (fun () ->
      ignore t;
      ignore frame)
  [@@hot]
