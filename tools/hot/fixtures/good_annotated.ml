(* A callee's classified allocation does not taint the root: the
   (token, result) pair is the API's return surface, by design, and
   the [@@hot.alloc] on the allocating function says so. *)

let completion tok res = (tok, res)
  [@@hot.alloc "the (token, result) pair is the wait API's return surface"]

let wait_for tok = completion tok 0
  [@@hot]
