(* No hot root anywhere: the control plane may allocate freely — the
   budget binds the datapath, not setup and reporting. *)

let report stats = String.concat ", " (List.map string_of_int stats)
let banner n = Printf.sprintf "cold path %d" n
