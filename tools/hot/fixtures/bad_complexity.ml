(* Per-op iteration over a connection-indexed table busts the
   1000-cycle budget: the walk grows with the number of flows, not
   with the operation. *)

let totals : (int, int) Hashtbl.t = Hashtbl.create 16

let poll_totals () =                                  (* FLAG hot-complexity *)
  Hashtbl.fold (fun _ v acc -> acc + v) totals 0
  [@@hot]
