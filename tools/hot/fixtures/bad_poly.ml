(* Polymorphic hash and compare walk the key structure on every call.
   The tuple key also allocates, so the first root trips both
   families; the structural (=) on a constructed value trips only
   hot-poly. *)

let flows : (int * int, int) Hashtbl.t = Hashtbl.create 16

let classify src dst =                                (* FLAG hot-alloc hot-poly *)
  Hashtbl.find_opt flows (src, dst)
  [@@hot]

let st_weight st =                                    (* FLAG hot-poly *)
  if st = Some 1 then 2 else 1
  [@@hot]
