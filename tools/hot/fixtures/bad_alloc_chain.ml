(* The allocation hides two calls down, across a module boundary: the
   budget is the root's, so the finding lands here with the full
   chain through Good_chain_helper.render. *)

let label seq = Good_chain_helper.render seq

let deliver seq =                                     (* FLAG hot-alloc *)
  ignore (label seq)
  [@@hot]
