(* Annotations must stay honest, root or not: a why-less
   [@@hot.alloc] and one that exempts no tracked allocation both
   fail. *)

let wrap x =                                          (* FLAG hot-annotation *)
  [ x ]
  [@@hot.alloc ""]

let bump r =                                          (* FLAG hot-annotation *)
  incr r
  [@@hot.alloc "claims an allocation that is not there"]
