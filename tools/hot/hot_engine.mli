(** dk-hot: interprocedural hot-path cost analysis.

    The two-pass propagation machinery (per-function effect summaries,
    call-graph BFS, alias resolution) is {!Interproc}, shared with
    dk-shard; this module supplies the cost-specific rules and the
    hot-root inventory.

    Rule families, each reported at the hot root's definition with the
    offending call chain:
    - [hot-alloc]: no per-op heap allocation (closure capture,
      tuple/list/record construction, [Bytes]/[String]/[Array]
      builders, format strings) may be reachable from a hot root,
      unless the allocating function is classified
      [[@@hot.alloc "why"]] (pool internals, deliberate sim
      bookkeeping, API-mandated handles).
    - [hot-complexity]: no iteration or sorting over unbounded
      collections ([Hashtbl] walks, [Det] sorted iteration, [List]
      traversal) may run per operation.
    - [hot-poly]: no polymorphic compare/hash ([Hashtbl.hash], bare
      [compare], tuple-keyed tables, structural [=] on constructed
      values) may run per operation.
    - [hot-annotation]: an [[@@hot.alloc]] with no why, or one that
      exempts nothing, fails — annotations must stay honest.

    Hot roots ({!Interproc.summary} root kinds): the NIC/RDMA receive
    surface (["rx-delivery"]), the transmit surface (["tx-submit"]),
    the per-op Demi API (["demi-api"]), the doorbell path
    (["doorbell-flush"]), the engine step loop (["engine-step"]), and
    anything marked [[@@hot]] (["annotated"]). *)

type finding = Tool_common.finding

type effect_site = Interproc.effect_site = { via : string; at : int }

type summary = Interproc.summary = {
  key : string;
  s_path : string;
  def_line : int;
  attrs : Parsetree.attributes;
  mutable intrinsic : (string * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : string option;
}
(** Re-exported from {!Interproc}; effect kinds here are
    ["alloc:<what>"], ["scan:<what>"] and ["poly:<what>"], root kinds
    ["rx-delivery"], ["tx-submit"], ["demi-api"], ["doorbell-flush"],
    ["engine-step"], ["annotated"]. *)

type program

val analyze_files : (string * string) list -> program
(** [(path, source)] pairs, analyzed together as one program — edges
    may cross files. The [[@@hot.alloc]] audit and exemption run here:
    annotated functions have their alloc-family effects stripped
    (after recording any [hot-annotation] findings). *)

val analyze_dirs : string list -> program * int
(** Walk directories (via {!Tool_common.ml_files}), analyze every
    [.ml]; also returns the number of files read. *)

val findings : program -> finding list
(** All four rule families plus [parse-error], sorted and deduplicated
    by (path, line, rule). At most one finding per family per root:
    the budget is the root's, so the shortest witness chain is the
    diagnostic. *)

val scan_dirs : string list -> finding list * int
(** [analyze_dirs] followed by [findings]; the driver entry point. *)

val summary_of : program -> string -> summary option
(** Look up one function's summary by key (for tests and debugging). *)

type root_info = {
  r_key : string;
  r_kind : string;
  r_path : string;
  r_line : int;
  r_reached : int;  (** analyzed functions reachable from this root *)
}

val inventory : program -> root_info list
(** Every hot root, sorted by key, with the size of its reachable
    call-graph footprint. *)

val inventory_json : root_info list -> string
val inventory_table : root_info list -> string
