(* dk-hot driver.

   Default mode mirrors dk-lint/dk-verify/dk-shard: scan, subtract the
   allowlist, print findings, exit nonzero on findings or stale
   allowlist entries. [--inventory] instead prints the hot-root
   inventory (as a table, or as JSON with [--json]) and exits 0 — that
   output is the contract `demi hotcheck` mirrors. *)

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  if List.mem "--inventory" argv then begin
    let json = List.mem "--json" argv in
    let rec parse dirs = function
      | [] -> List.rev dirs
      | ("--inventory" | "--json") :: rest -> parse dirs rest
      | "--root" :: d :: rest ->
          Sys.chdir d;
          parse dirs rest
      | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
          Printf.eprintf "dk-hot: unknown option %s\n" arg;
          exit 2
      | d :: rest -> parse (d :: dirs) rest
    in
    let dirs = match parse [] argv with [] -> [ "lib" ] | ds -> ds in
    let prog, _ = Hot_engine.analyze_dirs dirs in
    let inv = Hot_engine.inventory prog in
    if json then print_string (Hot_engine.inventory_json inv)
    else print_string (Hot_engine.inventory_table inv)
  end
  else
    Tool_common.run_driver ~tool:"dk-hot"
      ~usage:
        "dk_hot [--root DIR] [--allowlist FILE] [--json] [--inventory \
         [--json]] [DIR ...]"
      ~default_allowlist:"tools/hot/allowlist.txt"
      ~default_dirs:[ "lib" ] ~scan:Hot_engine.scan_dirs ()
