(** Shared plumbing for the dk-* build-time source tools (dk-lint,
    dk-verify, dk-shard): the finding type, allowlist semantics,
    defensive directory walking, and the common driver main loop.

    The allowlist contract lives here so the three tools cannot drift:
    one [rule path] pair per line suppresses every finding of that rule
    in that file, and an entry that no longer matches anything is
    reported as stale and fails the run — the allowlist can only
    shrink. *)

type finding = { path : string; line : int; rule : string; message : string }

val compare_finding : finding -> finding -> int
(** Order by path, then line, then rule (message excluded, so
    [List.sort_uniq compare_finding] deduplicates same-site findings). *)

val pp_finding : finding -> string
(** ["path:line: [rule] message"]. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool

val normalize : string -> string
(** Backslashes to slashes, leading ["./"] stripped — allowlist paths
    and scanned paths must compare equal however they were spelled. *)

val read_file : string -> string

val walk : string -> string list -> string list
(** [walk dir acc] collects every file under [dir], skipping any
    directory whose name starts with ['.'] or ['_'] (a stray local
    [_build/], [_opam/] or [.git/] must never inject phantom findings)
    and any dotfile. Nonexistent directories yield [acc] unchanged. *)

val ml_files : string list -> string list
(** Walk the given directories and return the normalized, sorted,
    deduplicated [.ml] paths. *)

type allow_entry = { a_rule : string; a_path : string; mutable used : bool }

val load_allowlist : string -> allow_entry list
(** Empty when the file does not exist; malformed lines are reported on
    stderr and skipped. *)

val apply_allowlist :
  allow_entry list -> finding list -> finding list * allow_entry list
(** Returns the findings not covered by the allowlist, plus the unused
    (stale) allowlist entries. *)

val json_escape : string -> string
(** Escape for inclusion inside a JSON string literal. *)

val findings_json :
  tool:string ->
  files:int ->
  kept:finding list ->
  stale:allow_entry list ->
  allowlisted:int ->
  string
(** The machine-readable run report every driver's [--json] mode
    emits: tool name, file count, post-allowlist findings, stale
    allowlist entries — one schema for all four tools. *)

val run_driver :
  tool:string ->
  usage:string ->
  default_allowlist:string ->
  default_dirs:string list ->
  ?extra_arg:(string list -> string list option) ->
  scan:(string list -> finding list * int) ->
  unit ->
  unit
(** The common driver: parse [--root]/[--allowlist]/[--json]/DIR
    arguments (refusing directories that do not exist), run [scan],
    subtract the allowlist, print findings and stale entries (as text,
    or as one {!findings_json} report under [--json]), and exit
    nonzero on either. [extra_arg] lets a tool consume its own flags
    first — return [Some rest] after eating one or more arguments,
    [None] to fall through to the common parser. *)
