(* Shared plumbing for the dk-* source tools (dk-lint, dk-verify,
   dk-shard): the finding type, the allowlist loader and stale-entry
   semantics, defensive directory walking, and the common driver main
   loop. One copy, three tools — the allowlist contract in particular
   ("stale entries fail, the list can only shrink") must not drift
   between them. *)

type finding = { path : string; line : int; rule : string; message : string }

let compare_finding a b =
  match String.compare a.path b.path with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let pp_finding f =
  Printf.sprintf "%s:%d: [%s] %s" f.path f.line f.rule f.message

(* ---------------- small string/path helpers ---------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- filesystem walking ---------------- *)

(* Skip every directory whose name starts with '.' or '_': a stray
   local _build/, _opam/ or .git/ must never inject phantom sources
   into a scan — scanners gate the build, so a phantom finding (or a
   phantom-clean pass over generated code) is a CI lie. Plain files
   keep their names; only directories are filtered. *)
let skip_dir_entry entry =
  entry = "" || entry.[0] = '.' || entry.[0] = '_'

let rec walk dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            if skip_dir_entry entry then acc else walk path acc
          else if entry.[0] = '.' then acc
          else path :: acc)
      acc (Sys.readdir dir)

let ml_files dirs =
  List.concat_map (fun d -> walk (normalize d) []) dirs
  |> List.map normalize
  |> List.sort_uniq String.compare
  |> List.filter (ends_with ~suffix:".ml")

(* ---------------- allowlist ---------------- *)

type allow_entry = { a_rule : string; a_path : string; mutable used : bool }

let load_allowlist path : allow_entry list =
  if not (Sys.file_exists path) then []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match
               String.split_on_char ' ' line
               |> List.filter (fun s -> s <> "")
             with
             | [ a_rule; a_path ] ->
                 Some { a_rule; a_path = normalize a_path; used = false }
             | _ ->
                 Printf.eprintf "allowlist: malformed line: %s\n" line;
                 None)

let apply_allowlist (allow : allow_entry list) (findings : finding list) :
    finding list * allow_entry list =
  let kept =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun e -> e.a_rule = f.rule && e.a_path = f.path)
            allow
        with
        | Some e ->
            e.used <- true;
            false
        | None -> true)
      findings
  in
  (kept, List.filter (fun e -> not e.used) allow)

(* ---------------- JSON ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Machine-readable run report, shared by every dk-* driver's [--json]
   mode: the same facts the text output prints, one schema for all
   four tools so CI consumers parse one format. *)
let findings_json ~tool ~files ~(kept : finding list)
    ~(stale : allow_entry list) ~allowlisted : string =
  let finding f =
    Printf.sprintf
      "    {\"path\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \
       \"%s\"}"
      (json_escape f.path) f.line (json_escape f.rule)
      (json_escape f.message)
  in
  let stale_entry e =
    Printf.sprintf "    {\"rule\": \"%s\", \"path\": \"%s\"}"
      (json_escape e.a_rule) (json_escape e.a_path)
  in
  Printf.sprintf
    "{\n\
    \  \"tool\": \"%s\",\n\
    \  \"files\": %d,\n\
    \  \"allowlisted\": %d,\n\
    \  \"findings\": [\n%s\n  ],\n\
    \  \"stale\": [\n%s\n  ]\n\
     }\n"
    (json_escape tool) files allowlisted
    (String.concat ",\n" (List.map finding kept))
    (String.concat ",\n" (List.map stale_entry stale))

(* ---------------- the shared driver main loop ---------------- *)

(* Every dk-* driver is the same program: parse --root/--allowlist/DIRs,
   refuse to scan a directory that does not exist (a typo must not
   silently scan nothing), run the tool's scanner, subtract the
   allowlist, print findings and stale entries, exit nonzero on either.
   [extra_arg] lets a tool claim its own flags before the common ones
   are tried. *)
let run_driver ~tool ~usage ~default_allowlist ~default_dirs
    ?(extra_arg = fun _ -> None)
    ~(scan : string list -> finding list * int) () =
  let root = ref None in
  let allowlist = ref default_allowlist in
  let dirs = ref [] in
  let json = ref false in
  let rec parse = function
    | [] -> ()
    | args -> (
        match extra_arg args with
        | Some rest -> parse rest
        | None -> (
            match args with
            | [] -> ()
            | "--root" :: d :: rest ->
                root := Some d;
                parse rest
            | "--allowlist" :: f :: rest ->
                allowlist := f;
                parse rest
            | "--json" :: rest ->
                json := true;
                parse rest
            | ("--help" | "-h") :: _ ->
                print_endline usage;
                exit 0
            | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
                Printf.eprintf "%s: unknown option %s\nusage: %s\n" tool arg
                  usage;
                exit 2
            | dir :: rest ->
                dirs := dir :: !dirs;
                parse rest))
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !root with Some d -> Sys.chdir d | None -> ());
  let dirs = match List.rev !dirs with [] -> default_dirs | ds -> ds in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "%s: no such directory: %s\n" tool d;
        exit 2
      end)
    dirs;
  let findings, scanned = scan dirs in
  let allow = load_allowlist !allowlist in
  let kept, stale = apply_allowlist allow findings in
  let allowlisted = List.length allow - List.length stale in
  if !json then
    print_string
      (findings_json ~tool ~files:scanned ~kept ~stale ~allowlisted)
  else begin
    List.iter (fun f -> print_endline (pp_finding f)) kept;
    List.iter
      (fun e ->
        Printf.eprintf
          "%s: stale allowlist entry (no longer matches): %s %s\n" tool
          e.a_rule e.a_path)
      stale;
    Printf.printf "%s: %d source file(s), %d finding(s), %d allowlisted\n"
      tool scanned (List.length kept) allowlisted
  end;
  if kept <> [] || stale <> [] then exit 1
