(** The shared interprocedural propagation engine behind dk-shard and
    dk-hot.

    Pass 1 parses every file with compiler-libs (no typechecking) and
    computes a per-function {!summary}: intrinsic effects (tool-defined
    string kinds), candidate callees, the unknown-call taint, and an
    optional root kind. Pass 2 ({!reach}) is a BFS over the
    approximated call graph from a root, returning the first witness
    site per effect kind with the full call chain.

    Tool-specific content — name-based intrinsics, shape-based
    expression effects, root discovery, dk-shard's module-state
    inventory callbacks — arrives through the {!hooks} record; start
    from {!default_hooks} and override what the tool needs. *)

open Parsetree

type effect_site = { via : string; at : int }
(** What was called or constructed ([via], display form) and on which
    line. *)

type summary = {
  key : string;
  s_path : string;
  def_line : int;
  attrs : attributes;
  mutable intrinsic : (string * effect_site) list;
  mutable calls : string list;
  mutable unknown : bool;
  mutable root : string option;
}
(** One function's effect summary. [key] is ["Module.fn"] for toplevel
    functions, ["Module.fn.local"] for let-bound local functions and
    ["Module.fn.<cb@N>"] for a callback closure registered on line [N].
    [intrinsic] keeps the first site per effect kind. [unknown] is set
    when the body calls through a value the analysis cannot resolve (a
    parameter, a stored closure, a record field); it is tracked for
    honesty but deliberately not reported by either tool — flagging
    every [t.on_event ()] callback would drown the signal. *)

type program = {
  summaries : (string, summary) Hashtbl.t;
  mutable parse_failures : Tool_common.finding list;
}

type hooks = {
  tool : string;  (** for the parse-error diagnostic *)
  intrinsic_of :
    cur_module:string -> call:bool -> string * string -> (string * string) option;
      (** Name-based effects: resolved [(module, fn)] — [("", x)] for a
          bare unresolved ident — to [(kind, via)]. [call] is true in
          call position. *)
  expr_effects :
    cur_module:string ->
    resolve:(string -> string) ->
    toplevel:(string -> bool) ->
    expression ->
    (string * string * int) list;
      (** Shape-based effects of one expression node: [(kind, via,
          line)] triples. Called once per walked node, except the
          fun-layer spine of a named binding (so a tool that charges
          lambdas as closure allocations never sees the function's own
          definition layers). *)
  registration_of : string * string -> (int * string) option;
      (** Callback-registration surface: [(module, fn)] to (index of
          the callback among positional args, root kind it becomes). *)
  binding_root :
    cur_module:string -> name:string -> attributes -> string option;
      (** Root kind of a toplevel function binding, if any. *)
  merge_root : existing:string -> string -> string;
      (** A function already rooted as [existing] is also registered as
          the second kind; pick the one to keep. *)
  global_rhs : expression -> bool;
      (** RHS shapes that make a non-function toplevel binding a
          tracked mutable global (enables local-name mutation
          targeting). *)
  mutator_of : string * string -> bool;
      (** Container operations whose first argument is the mutated
          structure ([Hashtbl.replace], ...); [:=]/[incr]/[decr] are
          engine built-ins. *)
  on_toplevel : cur_module:string -> path:string -> value_binding -> unit;
      (** Every toplevel non-function [Ppat_var] binding — dk-shard's
          state inventory hangs here. *)
  on_mutation :
    key:string ->
    target:string * string ->
    path:string ->
    line:int ->
    how:string ->
    unit;
      (** A mutation of module-level binding [target = (module, name)]
          performed inside summary [key]. *)
}

val default_hooks : tool:string -> hooks
(** All hooks inert: no intrinsics, no roots, no state tracking. *)

val mut_global_kind : string
(** The engine's effect kind for module-state writes (["mut-global"]). *)

val analyze_files : hooks -> (string * string) list -> program
(** [(path, source)] pairs, analyzed together as one program — edges
    may cross files. *)

val analyze_dirs : hooks -> string list -> program * int
(** Walk directories (via {!Tool_common.ml_files}), analyze every
    [.ml]; also returns the number of files read. *)

type hit = {
  h_kind : string;
  h_sum : summary;
  h_site : effect_site;
  h_chain : string;
}

val reach : program -> summary -> hit list
(** BFS from a root: the first witness per effect kind, in discovery
    order (shortest chains first). [h_chain] is the key chain from the
    root to the witness's summary, [" -> "]-joined. *)

val roots : program -> summary list
(** Summaries with a root kind, sorted by key. *)

val summary_of : program -> string -> summary option

val all_summaries : program -> summary list
(** Every summary, sorted by key (for inventories and tests). *)

(** {2 AST helpers shared by the tool engines} *)

val line_of : Location.t -> int
val last_two : Longident.t -> (string * string) option
val strip : expression -> expression
val strip_pat : pattern -> pattern
val is_fun : expression -> bool
val module_of_path : string -> string
val attr_string : attribute -> string
val find_attr : string -> attributes -> attribute option
val has_attr : string -> attributes -> bool
val is_operator : string -> bool
