(* The shared interprocedural propagation engine behind dk-shard and
   dk-hot.

   Both tools are the same two-pass analysis over different rule
   content. Pass 1 parses every file with compiler-libs (no
   typechecking) and computes a per-function summary: which intrinsic
   effects the body performs (a tool-defined string kind per effect),
   which functions it may call, and whether it calls through values the
   analysis cannot resolve (the [unknown] taint). Pass 2 is a BFS over
   the approximated call graph from the tool's roots, reporting the
   first witness site per effect kind with the full call chain.

   What is generic lives here: the walker (let-bound local functions as
   child summaries, literal callbacks carved out as synthetic root
   nodes, module-alias resolution, the unknown-call taint), the
   summary/program representation, and the BFS. What is tool-specific
   arrives through a [hooks] record: name-based intrinsics, shape-based
   expression effects, root discovery (by binding or by registration
   site), and the module-level-state callbacks dk-shard's inventory is
   built from.

   Resolution is by the last two path components plus per-file
   [module X = Y] aliases, so [Dk_sim.Engine.at], [Engine.at] and an
   aliased [E.at] all resolve to ["Engine", "at"]. *)

open Parsetree

type effect_site = { via : string; at : int }

type summary = {
  key : string; (* "Module.fn", "Module.fn.local", "Module.fn.<cb@N>" *)
  s_path : string;
  def_line : int;
  attrs : attributes; (* the binding's attributes ([] for callbacks) *)
  mutable intrinsic : (string * effect_site) list; (* first site per kind *)
  mutable calls : string list; (* candidate callee keys *)
  mutable unknown : bool; (* called through something unresolvable *)
  mutable root : string option; (* tool-defined root kind *)
}

type program = {
  summaries : (string, summary) Hashtbl.t;
  mutable parse_failures : Tool_common.finding list;
}

type hooks = {
  tool : string;
  intrinsic_of :
    cur_module:string -> call:bool -> string * string -> (string * string) option;
  expr_effects :
    cur_module:string ->
    resolve:(string -> string) ->
    toplevel:(string -> bool) ->
    expression ->
    (string * string * int) list;
  registration_of : string * string -> (int * string) option;
  binding_root :
    cur_module:string -> name:string -> attributes -> string option;
  merge_root : existing:string -> string -> string;
  global_rhs : expression -> bool;
  mutator_of : string * string -> bool;
  on_toplevel : cur_module:string -> path:string -> value_binding -> unit;
  on_mutation :
    key:string ->
    target:string * string ->
    path:string ->
    line:int ->
    how:string ->
    unit;
}

let default_hooks ~tool =
  {
    tool;
    intrinsic_of = (fun ~cur_module:_ ~call:_ _ -> None);
    expr_effects = (fun ~cur_module:_ ~resolve:_ ~toplevel:_ _ -> []);
    registration_of = (fun _ -> None);
    binding_root = (fun ~cur_module:_ ~name:_ _ -> None);
    merge_root = (fun ~existing _ -> existing);
    global_rhs = (fun _ -> false);
    mutator_of = (fun _ -> false);
    on_toplevel = (fun ~cur_module:_ ~path:_ _ -> ());
    on_mutation = (fun ~key:_ ~target:_ ~path:_ ~line:_ ~how:_ -> ());
  }

(* The engine's own effect kind for module-state writes; dk-shard's
   inventory consumes the [on_mutation] callback, the kind only marks
   the summary. *)
let mut_global_kind = "mut-global"

(* ---------------- small AST helpers ---------------- *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let last_two (l : Longident.t) =
  let rec components acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> components (s :: acc) l
    | Longident.Lapply (_, l) -> components acc l
  in
  match List.rev (components [] l) with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

let rec strip (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> strip e
  | Pexp_open (_, e) -> strip e
  | _ -> e

let rec strip_pat (p : pattern) =
  match p.ppat_desc with
  | Ppat_constraint (p, _) | Ppat_open (_, p) -> strip_pat p
  | _ -> p

let is_fun (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let attr_string (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      s
  | _ -> ""

let find_attr name attrs =
  List.find_opt (fun (a : attribute) -> a.attr_name.txt = name) attrs

let has_attr name attrs = find_attr name attrs <> None

(* Operators ([+], [@@], [|>], ...) appear as bare idents in call
   position in every arithmetic expression; unless a tool claims one as
   an intrinsic they carry none of the effects we track and must not
   taint the summary. *)
let is_operator x =
  x <> ""
  &&
  match x.[0] with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> (
      (* the keyword infix operators are idents with letter names *)
      match x with
      | "lsl" | "lsr" | "asr" | "mod" | "land" | "lor" | "lxor" | "or" -> true
      | _ -> false)
  | _ -> true

(* ---------------- per-file analysis (pass 1) ---------------- *)

type fctx = {
  prog : program;
  hooks : hooks;
  path : string;
  cur_module : string;
  aliases : (string * string) list; (* module alias -> target last comp. *)
  toplevel : (string, unit) Hashtbl.t; (* toplevel value names of file *)
  top_globals : (string, unit) Hashtbl.t; (* toplevel global names *)
  mutable pending_roots : (string * string) list;
}

let resolve_mod fc m =
  match List.assoc_opt m fc.aliases with Some m' -> m' | None -> m

let new_summary ?(attrs = []) fc key line =
  let s =
    {
      key;
      s_path = fc.path;
      def_line = line;
      attrs;
      intrinsic = [];
      calls = [];
      unknown = false;
      root = None;
    }
  in
  Hashtbl.replace fc.prog.summaries key s;
  s

let add_effect (s : summary) kind via line =
  if not (List.mem_assoc kind s.intrinsic) then
    s.intrinsic <- (kind, { via; at = line }) :: s.intrinsic

let add_call (s : summary) callee =
  if not (List.mem callee s.calls) then s.calls <- callee :: s.calls

let record_mutation fc node ~m ~name ~line ~how =
  fc.hooks.on_mutation ~key:node.key ~target:(m, name) ~path:fc.path ~line
    ~how;
  add_effect node mut_global_kind (m ^ "." ^ name) line

(* Resolve an identifier occurrence. [locals] maps locally let-bound
   function names to their summary keys. [call] is true when the ident
   sits in call position, where an unresolvable name taints the
   summary (a parameter or stored closure: we cannot see its body). *)
let note_ident fc (node : summary) locals ~call ~line (txt : Longident.t) =
  match txt with
  | Longident.Lident x -> (
      match List.assoc_opt x locals with
      | Some key -> add_call node key
      | None ->
          if Hashtbl.mem fc.toplevel x then
            add_call node (fc.cur_module ^ "." ^ x)
          else (
            match
              fc.hooks.intrinsic_of ~cur_module:fc.cur_module ~call ("", x)
            with
            | Some (kind, via) -> add_effect node kind via line
            | None -> if call && not (is_operator x) then node.unknown <- true))
  | _ -> (
      match last_two txt with
      | Some (m, f) -> (
          let m = resolve_mod fc m in
          match fc.hooks.intrinsic_of ~cur_module:fc.cur_module ~call (m, f) with
          | Some (kind, via) -> add_effect node kind via line
          | None -> add_call node (m ^ "." ^ f))
      | None -> ())

(* The single target of a mutation-shaped expression, when it is a
   named module-level binding: [Some (module, name)]. *)
let global_target fc locals (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      if Hashtbl.mem fc.top_globals x && not (List.mem_assoc x locals) then
        Some (fc.cur_module, x)
      else None
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some (m, f) when m <> "" -> Some (resolve_mod fc m, f)
      | _ -> None)
  | _ -> None

(* [spine] is true while we are walking the fun-layer spine of a named
   binding: those lambdas define the function itself and are invisible
   to [expr_effects] (a lambda anywhere else is a value the body
   constructs, which dk-hot charges as a closure allocation). *)
let rec walk fc (node : summary) locals ~spine (e : expression) : unit =
  let lambda =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
    | _ -> false
  in
  if not (spine && lambda) then
    List.iter
      (fun (kind, via, line) -> add_effect node kind via line)
      (fc.hooks.expr_effects ~cur_module:fc.cur_module
         ~resolve:(resolve_mod fc)
         ~toplevel:(Hashtbl.mem fc.toplevel)
         e);
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      note_ident fc node locals ~call:false ~line:(line_of e.pexp_loc) txt
  | Pexp_let (rf, vbs, body) ->
      let locals' =
        List.fold_left
          (fun locals' vb ->
            match (strip_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt = name; _ } when is_fun vb.pvb_expr ->
                let key = node.key ^ "." ^ name in
                let child =
                  new_summary ~attrs:vb.pvb_attributes fc key
                    (line_of vb.pvb_loc)
                in
                let inner =
                  (* recursive locals see themselves *)
                  if rf = Asttypes.Recursive then (name, key) :: locals'
                  else locals'
                in
                walk fc child inner ~spine:true vb.pvb_expr;
                (name, key) :: locals'
            | _ ->
                walk fc node locals' ~spine:false vb.pvb_expr;
                locals')
          locals vbs
      in
      walk fc node locals' ~spine:false body
  | Pexp_apply (fn, args) -> walk_apply fc node locals e fn args
  | Pexp_setfield (target, _, value) ->
      (match global_target fc locals target with
      | Some (m, name) ->
          record_mutation fc node ~m ~name ~line:(line_of e.pexp_loc)
            ~how:"field write"
      | None -> walk fc node locals ~spine:false target);
      walk fc node locals ~spine:false value
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk fc node locals ~spine:false) default;
      (* inner fun layers are the same function, spine or closure *)
      walk fc node locals ~spine:true body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk fc node locals ~spine:false) c.pc_guard;
          walk fc node locals ~spine:true c.pc_rhs)
        cases
  | Pexp_newtype (_, body) -> walk fc node locals ~spine:true body
  | _ -> iter_children fc node locals e

and iter_children fc node locals (e : expression) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> walk fc node locals ~spine:false c);
    }
  in
  Ast_iterator.default_iterator.expr it e

(* An expression passed where a callback is expected: either a literal
   closure (which becomes its own synthetic summary) or the name of a
   function (marked as a root after all files are read). *)
and handle_callback fc (node : summary) locals kind (arg : expression) =
  let arg = strip arg in
  match arg.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
      (* constructing the callback is the registering function's work *)
      List.iter
        (fun (kind, via, line) -> add_effect node kind via line)
        (fc.hooks.expr_effects ~cur_module:fc.cur_module
           ~resolve:(resolve_mod fc)
           ~toplevel:(Hashtbl.mem fc.toplevel)
           arg);
      let line = line_of arg.pexp_loc in
      let key = Printf.sprintf "%s.<cb@%d>" node.key line in
      let cb = new_summary fc key line in
      cb.root <- Some kind;
      walk fc cb locals ~spine:true arg
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match List.assoc_opt x locals with
      | Some key -> fc.pending_roots <- (key, kind) :: fc.pending_roots
      | None ->
          if Hashtbl.mem fc.toplevel x then
            fc.pending_roots <-
              (fc.cur_module ^ "." ^ x, kind) :: fc.pending_roots
          else node.unknown <- true)
  | Pexp_ident { txt; _ } -> (
      match last_two txt with
      | Some (m, f) ->
          fc.pending_roots <-
            (resolve_mod fc m ^ "." ^ f, kind) :: fc.pending_roots
      | None -> ())
  | _ ->
      (* computed callback: analyze it in place, taint the caller *)
      node.unknown <- true;
      walk fc node locals ~spine:false arg

and walk_apply fc node locals (e : expression) fn args =
  let line = line_of e.pexp_loc in
  let positional =
    List.filter_map
      (fun (lbl, a) ->
        match lbl with Asttypes.Nolabel -> Some a | _ -> None)
      args
  in
  let fn_path =
    match (strip fn).pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match last_two txt with
        | Some (m, f) -> Some (resolve_mod fc m, f)
        | None -> None)
    | _ -> None
  in
  (* the callee itself *)
  (match (strip fn).pexp_desc with
  | Pexp_ident { txt; _ } -> note_ident fc node locals ~call:true ~line txt
  | Pexp_fun _ | Pexp_function _ ->
      (* immediately-applied closure: effects are the caller's *)
      walk fc node locals ~spine:false fn
  | _ ->
      (* call through a field / array slot / computed expr *)
      node.unknown <- true;
      walk fc node locals ~spine:false fn);
  (* mutation shapes *)
  (match fn_path with
  | Some ("", (":=" | "incr" | "decr")) -> (
      match positional with
      | target :: _ -> (
          match global_target fc locals target with
          | Some (m, name) -> record_mutation fc node ~m ~name ~line ~how:":="
          | None -> ())
      | [] -> ())
  | Some (m, f) when fc.hooks.mutator_of (m, f) -> (
      match positional with
      | target :: _ -> (
          match global_target fc locals target with
          | Some (gm, name) ->
              record_mutation fc node ~m:gm ~name ~line ~how:(m ^ "." ^ f)
          | None -> ())
      | [] -> ())
  | _ -> ());
  (* the arguments; a registered callback is carved out as a root *)
  let cb_index =
    match fn_path with
    | Some p -> fc.hooks.registration_of p
    | None -> None
  in
  let pos = ref (-1) in
  List.iter
    (fun (lbl, a) ->
      (match lbl with Asttypes.Nolabel -> incr pos | _ -> ());
      match cb_index with
      | Some (idx, kind) when lbl = Asttypes.Nolabel && !pos = idx ->
          handle_callback fc node locals kind a
      | _ -> walk fc node locals ~spine:false a)
    args

(* ---------------- file-level collection ---------------- *)

let collect_aliases (str : structure) =
  List.filter_map
    (fun si ->
      match si.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } -> (
          match last_two txt with
          | Some (_, last) -> Some (name, last)
          | None -> None)
      | _ -> None)
    str

let rec toplevel_bindings (str : structure) : value_binding list =
  List.concat_map
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          toplevel_bindings sub
      | _ -> [])
    str

let analyze_file hooks prog ~path (src : string) : unit =
  let cur_module = module_of_path path in
  match
    let lexbuf = Lexing.from_string src in
    Lexing.set_filename lexbuf path;
    Parse.implementation lexbuf
  with
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error err -> line_of (Syntaxerr.location_of_error err)
        | _ -> 1
      in
      prog.parse_failures <-
        {
          Tool_common.path;
          line;
          rule = "parse-error";
          message =
            Printf.sprintf
              "source does not parse as OCaml: %s needs real syntax (is this \
               file generated or preprocessed?)"
              hooks.tool;
        }
        :: prog.parse_failures
  | str ->
      let bindings = toplevel_bindings str in
      let toplevel = Hashtbl.create 64 in
      let top_globals = Hashtbl.create 8 in
      (* names first: bodies may forward-reference later bindings *)
      List.iter
        (fun vb ->
          match (strip_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt = name; _ } ->
              Hashtbl.replace toplevel name ();
              if (not (is_fun vb.pvb_expr)) && hooks.global_rhs vb.pvb_expr
              then Hashtbl.replace top_globals name ()
          | _ -> ())
        bindings;
      let fc =
        {
          prog;
          hooks;
          path;
          cur_module;
          aliases = collect_aliases str;
          toplevel;
          top_globals;
          pending_roots = [];
        }
      in
      List.iter
        (fun vb ->
          match (strip_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt = name; _ } when is_fun vb.pvb_expr ->
              let key = cur_module ^ "." ^ name in
              let s =
                new_summary ~attrs:vb.pvb_attributes fc key
                  (line_of vb.pvb_loc)
              in
              s.root <-
                hooks.binding_root ~cur_module ~name vb.pvb_attributes;
              walk fc s [ (name, key) ] ~spine:true vb.pvb_expr
          | Ppat_var _ -> hooks.on_toplevel ~cur_module ~path vb
          | _ -> ())
        bindings;
      (* roots named (rather than written inline) at registration sites *)
      List.iter
        (fun (key, kind) ->
          match Hashtbl.find_opt prog.summaries key with
          | Some s ->
              s.root <-
                Some
                  (match s.root with
                  | None -> kind
                  | Some existing -> hooks.merge_root ~existing kind)
          | None -> ())
        fc.pending_roots

(* ---------------- pass 2: propagation ---------------- *)

type hit = {
  h_kind : string;
  h_sum : summary;
  h_site : effect_site;
  h_chain : string; (* "root -> a -> b", keys joined *)
}

(* BFS from [root]; the first witness per effect kind, in discovery
   order. Shortest chains first, so diagnostics name the most direct
   witness. *)
let reach prog (root : summary) : hit list =
  let visited = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace visited root.key ();
  Queue.add root.key queue;
  let chain_to key =
    let rec up acc key =
      match Hashtbl.find_opt parent key with
      | Some p -> up (key :: acc) p
      | None -> key :: acc
    in
    String.concat " -> " (up [] key)
  in
  let hits = ref [] in
  let seen_kind = Hashtbl.create 8 in
  while not (Queue.is_empty queue) do
    let key = Queue.take queue in
    match Hashtbl.find_opt prog.summaries key with
    | None -> ()
    | Some s ->
        List.iter
          (fun (kind, site) ->
            if not (Hashtbl.mem seen_kind kind) then begin
              Hashtbl.replace seen_kind kind ();
              hits :=
                { h_kind = kind; h_sum = s; h_site = site;
                  h_chain = chain_to s.key }
                :: !hits
            end)
          (List.rev s.intrinsic);
        List.iter
          (fun callee ->
            if not (Hashtbl.mem visited callee) then begin
              Hashtbl.replace visited callee ();
              Hashtbl.replace parent callee key;
              Queue.add callee queue
            end)
          (List.rev s.calls)
  done;
  List.rev !hits

(* ---------------- public interface ---------------- *)

let analyze_files hooks (files : (string * string) list) : program =
  let prog = { summaries = Hashtbl.create 512; parse_failures = [] } in
  List.iter (fun (path, src) -> analyze_file hooks prog ~path src) files;
  prog

let analyze_dirs hooks (dirs : string list) : program * int =
  let files = Tool_common.ml_files dirs in
  let prog =
    analyze_files hooks
      (List.map (fun f -> (f, Tool_common.read_file f)) files)
  in
  (prog, List.length files)

let summary_of (prog : program) key = Hashtbl.find_opt prog.summaries key

let roots (prog : program) : summary list =
  Hashtbl.fold
    (fun _ s acc -> if s.root <> None then s :: acc else acc)
    prog.summaries []
  |> List.sort (fun a b -> String.compare a.key b.key)

let all_summaries (prog : program) : summary list =
  Hashtbl.fold (fun _ s acc -> s :: acc) prog.summaries []
  |> List.sort (fun a b -> String.compare a.key b.key)
