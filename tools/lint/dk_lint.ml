(* dk-lint driver: scan source directories, subtract the allowlist,
   print file:line diagnostics, exit nonzero on any finding or stale
   allowlist entry. All the plumbing lives in Tool_common. *)

let () =
  Tool_common.run_driver ~tool:"dk-lint"
    ~usage:"dk_lint [--root DIR] [--allowlist FILE] [DIR ...]"
    ~default_allowlist:"tools/lint/allowlist.txt"
    ~default_dirs:[ "lib"; "bench"; "examples" ]
    ~scan:Lint_engine.scan_dirs ()
