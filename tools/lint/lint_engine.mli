(** dk-lint rule engine.

    Scans OCaml sources (comments/strings stripped, then tokenized) for
    project-specific correctness rules:

    - [missing-mli]: every [.ml] under [lib/] has a matching [.mli].
    - [unsafe-op]: no [Obj.magic] / [Bytes.unsafe_*] / [String.unsafe_*]
      in fast-path modules ([lib/mem], [lib/core], [lib/net],
      [lib/device] — descriptor rings are fast-path too).
    - [poly-compare]: no polymorphic [=]/[<>]/[compare] applied to
      buffer/sga-named values in fast-path modules (heuristic: fires
      next to identifiers named [buf]/[sga]/[*_buf]/[*_sga]/...).
    - [print-in-lib]: no [Printf.printf]-family calls in [lib/];
      diagnostics go through [Dk_sim.Trace].
    - [catch-all-exn]: no [try ... with _ ->] handlers.
    - [exit-outside-bin]: no [exit] outside [bin/].

    False positives are suppressed through the allowlist, one
    [rule path] pair per line. *)

type finding = Tool_common.finding = {
  path : string;
  line : int;
  rule : string;
  message : string;
}

val compare_finding : finding -> finding -> int

val pp_finding : finding -> string
(** ["path:line: [rule] message"]. *)

val scan_source : path:string -> string -> finding list
(** Content rules only (no filesystem access); [path] selects which
    rules apply and appears in diagnostics. *)

val scan_dirs : string list -> finding list * int
(** Walk the given directories, scan every [.ml], and check [.mli]
    presence for [lib/]. Returns sorted findings and the number of
    sources scanned. *)

type allow_entry = Tool_common.allow_entry = {
  a_rule : string;
  a_path : string;
  mutable used : bool;
}

val load_allowlist : string -> allow_entry list
(** Shared with dk-verify and dk-shard via {!Tool_common}: empty when
    the file does not exist; malformed lines are reported on stderr and
    skipped. *)

val apply_allowlist :
  allow_entry list -> finding list -> finding list * allow_entry list
(** Returns the findings not covered by the allowlist, plus the unused
    (stale) allowlist entries. *)
