(* dk-lint: project-specific source rules for the Demikernel reproduction.

   The linter works on a cleaned token stream (comments, string literals
   and char literals blanked out), so the rules below are heuristic but
   comment/string-safe. False positives are silenced through the
   checked-in allowlist rather than by weakening a rule. *)

(* Finding type and allowlist semantics are shared across the dk-*
   tools through Tool_common; the re-exports keep existing callers
   ([Lint_engine.finding], [Lint_engine.load_allowlist]) compiling. *)

type finding = Tool_common.finding = {
  path : string;
  line : int;
  rule : string;
  message : string;
}

let compare_finding = Tool_common.compare_finding
let pp_finding = Tool_common.pp_finding

(* ---------------- path classification ---------------- *)

let normalize = Tool_common.normalize
let starts_with = Tool_common.starts_with
let ends_with = Tool_common.ends_with

(* Fast-path modules: the zero-copy data path where a stray polymorphic
   compare or unsafe access defeats the safety argument of §4.5. The
   unsafe-op rule additionally covers lib/device/ — descriptor rings
   and DMA buffers are fast-path too — while poly-compare stays scoped
   to the buffer-heavy layers where its name heuristic is reliable. *)
let fast_path_dirs = [ "lib/mem/"; "lib/core/"; "lib/net/" ]
let unsafe_op_dirs = "lib/device/" :: fast_path_dirs
let in_fast_path path = List.exists (fun d -> starts_with ~prefix:d path) fast_path_dirs
let in_unsafe_scope path = List.exists (fun d -> starts_with ~prefix:d path) unsafe_op_dirs
let in_lib path = starts_with ~prefix:"lib/" path

(* Fault-site discipline: every injected misbehaviour in the device
   layer must flow through the seeded Dk_fault hooks so that runs are
   replayable from (plan, seed) alone. Stdlib Random and wall-clock
   reads would make faults unreproducible. *)
let fault_site_dirs = [ "lib/device/"; "lib/fault/" ]
let in_fault_scope path =
  List.exists (fun d -> starts_with ~prefix:d path) fault_site_dirs

(* Offload-site discipline: the NIC's device-resident table is device
   state with a coherence protocol — reads answer rx frames on the
   device clock, writes must flow through the synchronous host→device
   control queue so an acknowledged SET/DEL can never be followed by a
   stale device GET. Only the device layer itself and the sanctioned
   kv control path in Demi (offload_insert/update/invalidate wrapping
   the Nic.ctrl functions) may touch it; anything else would bypass
   the ordering the no-stale tests assert. *)
let offload_sanctioned path =
  starts_with ~prefix:"lib/device/" path || path = "lib/core/demi.ml"

(* ---------------- comment / literal stripping ---------------- *)

(* Replace comments, string literals and char literals with spaces,
   preserving newlines so line numbers survive. Handles nested (* *)
   comments and string literals inside comments. *)
let clean (src : string) : string =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let is_char_literal i =
    (* at src.[i] = '\'': distinguish a char literal from a type
       variable / polymorphic variant tick *)
    if i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\'' then Some (i + 2)
    else if i + 1 < n && src.[i + 1] = '\\' then begin
      (* escape: scan a short window for the closing quote *)
      let rec find j = if j > i + 6 || j >= n then None
        else if src.[j] = '\'' then Some j else find (j + 1)
      in
      find (i + 2)
    end
    else None
  in
  let i = ref 0 in
  let comment_depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i; blank (!i + 1); incr comment_depth; i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i; blank (!i + 1); decr comment_depth; i := !i + 2
      end
      else if c = '"' then begin
        (* string inside a comment: skip to its end *)
        blank !i; incr i;
        let fin = ref false in
        while not !fin && !i < n do
          (if src.[!i] = '\\' && !i + 1 < n then begin blank !i; blank (!i + 1); i := !i + 1 end
           else if src.[!i] = '"' then fin := true);
          blank !i; incr i
        done
      end
      else begin blank !i; incr i end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i; blank (!i + 1); comment_depth := 1; i := !i + 2
    end
    else if c = '"' then begin
      blank !i; incr i;
      let fin = ref false in
      while not !fin && !i < n do
        (if src.[!i] = '\\' && !i + 1 < n then begin blank !i; blank (!i + 1); i := !i + 1 end
         else if src.[!i] = '"' then fin := true);
        blank !i; incr i
      done
    end
    else if c = '\'' then begin
      match is_char_literal !i with
      | Some close ->
          for j = !i to close do blank j done;
          i := close + 1
      | None -> incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* ---------------- tokenizer ---------------- *)

type token = { text : string; tline : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let is_sym_char c =
  String.contains "!$%&*+-./:<=>?@^|~" c

(* Qualified identifiers ([Bytes.unsafe_get], [t.field]) come out as a
   single dotted token; operators are maximal runs of symbol chars. *)
let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push text tline = toks := { text; tline } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i and l0 = !line in
      let stop = ref false in
      while not !stop && !i < n do
        if is_ident_char src.[!i] then incr i
        else if
          src.[!i] = '.' && !i + 1 < n && is_ident_start src.[!i + 1]
        then incr i
        else stop := true
      done;
      push (String.sub src start (!i - start)) l0
    end
    else if is_digit c then begin
      let start = !i and l0 = !line in
      while
        !i < n
        && (is_ident_char src.[!i] || src.[!i] = '.'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      push (String.sub src start (!i - start)) l0
    end
    else if is_sym_char c then begin
      let start = !i and l0 = !line in
      while !i < n && is_sym_char src.[!i] do incr i done;
      push (String.sub src start (!i - start)) l0
    end
    else begin
      push (String.make 1 c) !line;
      incr i
    end
  done;
  List.rev !toks

(* ---------------- rules ---------------- *)

let unsafe_primitives =
  [
    "Obj.magic";
    "Bytes.unsafe_get";
    "Bytes.unsafe_set";
    "Bytes.unsafe_blit";
    "Bytes.unsafe_fill";
    "String.unsafe_get";
    "String.unsafe_set";
    "Array.unsafe_get";
    "Array.unsafe_set";
  ]

let print_primitives =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
  ]

(* Identifier naming convention for buffer/sga-typed values; the
   poly-compare rule only fires next to one of these. *)
let bufferish name =
  let last =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  last = "buf" || last = "buffer" || last = "sga"
  || ends_with ~suffix:"_buf" last
  || ends_with ~suffix:"_buffer" last
  || ends_with ~suffix:"_sga" last
  || starts_with ~prefix:"buf_" last
  || starts_with ~prefix:"sga_" last

(* Statistic-flavoured identifier segments: a [mutable … : int] field or
   [ref 0] whose name contains one of these is almost always an event
   counter, which belongs in Dk_obs.Metrics where `demi stats` and the
   bench dumps can see it. Deliberate per-instance stats (a [stats t]
   accessor mirroring class-wide obs counters) go in the allowlist. *)
let statsy_words =
  [
    "hits"; "misses"; "drops"; "dropped"; "errors"; "retransmits"; "acks";
    "wakeups"; "allocs"; "releases"; "redeems"; "completes"; "timeouts";
    "frames"; "bytes"; "sent"; "received"; "rejected"; "lost"; "delivered";
    "unrouted"; "filtered"; "mapped"; "copied"; "wasted"; "evicted";
    "failures"; "reads"; "writes"; "syscalls"; "retries"; "polls";
  ]

let statsy name =
  String.split_on_char '_' (String.lowercase_ascii name)
  |> List.exists (fun seg -> List.mem seg statsy_words)

let binding_starters = [ "let"; "and"; "method"; "val"; "external"; "type" ]
let record_contexts = [ ";"; "{"; "with"; "?" ]

(* Is the [=] at index [i] a binding rather than a comparison? Walk left
   over parameter-like tokens; a binding keyword (or record-field
   context) before anything else means binding. *)
let is_binding_eq (toks : token array) i =
  let passes t =
    t = "_" || t = "(" || t = ")" || t = "~" || t = "?" || t = ":" || t = ","
    || t = "[" || t = "]" || t = "*" || t = "." || t = "'"
    || (String.length t > 0 && is_ident_start t.[0])
  in
  let rec walk j steps =
    if j < 0 || steps > 40 then true (* give up quietly: assume binding *)
    else
      let t = toks.(j).text in
      if List.mem t binding_starters then true
      else if List.mem t record_contexts then true
      else if passes t then walk (j - 1) (steps + 1)
      else false
  in
  walk (i - 1) 0

let scan_tokens ~path (toks : token array) : finding list =
  let findings = ref [] in
  let add line rule message = findings := { path; line; rule; message } :: !findings in
  let fast = in_fast_path path in
  let unsafe_scope = in_unsafe_scope path in
  let fault_scope = in_fault_scope path in
  let lib = in_lib path in
  let bin = starts_with ~prefix:"bin/" path in
  let ntok = Array.length toks in
  let text i = if i >= 0 && i < ntok then toks.(i).text else "" in
  (* try/match tracking for the catch-all rule *)
  let stack = ref [] in
  for i = 0 to ntok - 1 do
    let tok = toks.(i).text and line = toks.(i).tline in
    (* unsafe primitives in fast-path modules *)
    if unsafe_scope && List.mem tok unsafe_primitives then
      add line "unsafe-op"
        (Printf.sprintf
           "%s in a fast-path module: bounds-checked access is the only \
            memory safety the data path has"
           tok);
    (* non-deterministic fault sources in the device/fault layer *)
    if
      fault_scope
      && (starts_with ~prefix:"Random." tok
         || tok = "Unix.gettimeofday" || tok = "Unix.time" || tok = "Sys.time")
    then
      add line "fault-site"
        (Printf.sprintf
           "%s in the device/fault layer: injected misbehaviour must come \
            from the seeded Dk_fault hooks (fire/mangle/extra_delay) so \
            every fault replays from (plan, seed); never ad-hoc randomness \
            or wall-clock"
           tok);
    (* doorbell writes outside the device-layer submission stage *)
    if
      lib
      && (not (starts_with ~prefix:"lib/sim/" path))
      && path <> "lib/device/doorbell.ml"
      && (tok = "pcie_doorbell" || ends_with ~suffix:".pcie_doorbell" tok)
    then
      add line "doorbell-site"
        "pcie_doorbell charged outside Dk_device.Doorbell: every tx doorbell \
         must go through the device-layer submission stage (Doorbell.submit / \
         Doorbell.group) so coalescing windows and the *.doorbells counters \
         see it";
    (* device-resident table access outside the device layer / Demi
       control path *)
    if
      (not (offload_sanctioned path))
      && (starts_with ~prefix:"Dk_device.Table." tok
         || starts_with ~prefix:"Table." tok
         || starts_with ~prefix:"Dk_device.Nic.ctrl_" tok
         || starts_with ~prefix:"Nic.ctrl_" tok)
    then
      add line "offload-site"
        (Printf.sprintf
           "%s outside lib/device and the Demi kv control path: the \
            device-resident table is coherent only through the synchronous \
            ctrl queue (Demi.offload_insert/update/invalidate) — direct \
            access can serve stale device reads after an acknowledged write"
           tok);
    (* printing from library code *)
    if lib && List.mem tok print_primitives then
      add line "print-in-lib"
        (Printf.sprintf "%s in lib/: route diagnostics through Dk_sim.Trace" tok);
    (* exit outside bin/ *)
    if (not bin) && (tok = "exit" || tok = "Stdlib.exit") then
      add line "exit-outside-bin"
        "exit outside bin/: libraries, benches and examples must return, not exit";
    (* ad-hoc statistics counters in lib/ outside lib/obs/ *)
    if lib && not (starts_with ~prefix:"lib/obs/" path) then begin
      if
        tok = "mutable" && statsy (text (i + 1)) && text (i + 2) = ":"
        && (text (i + 3) = "int" || text (i + 3) = "int64" || text (i + 3) = "Int64.t")
      then
        add line "adhoc-counter"
          (Printf.sprintf
             "mutable counter %s outside lib/obs: statistics belong in \
              Dk_obs.Metrics so `demi stats` and the bench dumps see them \
              (allowlist deliberate per-instance stats)"
             (text (i + 1)));
      if
        tok = "let" && statsy (text (i + 1)) && text (i + 2) = "="
        && text (i + 3) = "ref"
        && (text (i + 4) = "0" || text (i + 4) = "0L")
      then
        add line "adhoc-counter"
          (Printf.sprintf
             "ref-cell counter %s outside lib/obs: statistics belong in \
              Dk_obs.Metrics so `demi stats` and the bench dumps see them"
             (text (i + 1)))
    end;
    (* polymorphic comparison on buffers/sgas in fast-path modules *)
    if fast then begin
      if tok = "Stdlib.compare" then
        add line "poly-compare"
          "Stdlib.compare in a fast-path module compares buffer structure, \
           not contents; use Sga.equal or compare lengths/bytes explicitly";
      if tok = "compare" && (bufferish (text (i + 1)) || bufferish (text (i + 2)))
      then
        add line "poly-compare"
          "polymorphic compare on a buffer/sga value; use Sga.equal or an \
           explicit field comparison";
      if tok = "=" || tok = "<>" || tok = "==" || tok = "!=" then
        if bufferish (text (i - 1)) || bufferish (text (i + 1)) then
          if tok <> "=" || not (is_binding_eq toks i) then
            add line "poly-compare"
              (Printf.sprintf
                 "polymorphic %s on a buffer/sga value (compares the view \
                  record, not the payload); use Sga.equal or explicit fields"
                 tok)
    end;
    (* catch-all exception handlers *)
    (match tok with
    | "try" -> stack := `Try :: !stack
    | "match" -> stack := `Match :: !stack
    | "with" ->
        let opener =
          match !stack with
          | top :: rest ->
              stack := rest;
              Some top
          | [] -> None
        in
        let j = if text (i + 1) = "|" then i + 2 else i + 1 in
        let wildcard_arm = text j = "_" && text (j + 1) = "->" in
        (* [None] covers handlers whose try was consumed by an earlier
           record-update [with]; a wildcard arm directly after [with]
           cannot be a record update or a match, so flag it too. *)
        (match opener with
        | Some `Try | None ->
            if wildcard_arm then
              add toks.(j).tline "catch-all-exn"
                "catch-all `with _ ->` swallows every exception (including \
                 Out_of_memory and Assert_failure); match specific \
                 exceptions or re-raise"
        | Some `Match -> ())
    | _ -> ())
  done;
  List.rev !findings

let scan_source ~path (src : string) : finding list =
  let path = normalize path in
  scan_tokens ~path (Array.of_list (tokenize (clean src)))

(* ---------------- filesystem walking ---------------- *)

let read_file = Tool_common.read_file

let missing_mli ~files : finding list =
  let set = List.fold_left (fun s f -> (f, ()) :: s) [] files in
  let has f = List.mem_assoc f set in
  List.filter_map
    (fun f ->
      if in_lib f && ends_with ~suffix:".ml" f && not (has (f ^ "i")) then
        Some
          {
            path = f;
            line = 1;
            rule = "missing-mli";
            message =
              "every .ml under lib/ needs a matching .mli: interfaces are \
               where this repo's lifetime/ownership contracts live";
          }
      else None)
    files

let scan_dirs (dirs : string list) : finding list * int =
  let files =
    List.concat_map (fun d -> Tool_common.walk (normalize d) []) dirs
    |> List.map normalize |> List.sort_uniq String.compare
  in
  let sources = List.filter (ends_with ~suffix:".ml") files in
  let findings =
    missing_mli ~files
    @ List.concat_map (fun f -> scan_source ~path:f (read_file f)) sources
  in
  (List.sort compare_finding findings, List.length sources)

(* ---------------- allowlist (shared semantics) ---------------- *)

type allow_entry = Tool_common.allow_entry = {
  a_rule : string;
  a_path : string;
  mutable used : bool;
}

let load_allowlist = Tool_common.load_allowlist
let apply_allowlist = Tool_common.apply_allowlist
