#!/bin/sh
# Regenerate the E1-E16 bench tables and diff their headline
# virtual-time metrics against the committed baselines in
# tools/ci/baselines/, failing on a >25% regression (see
# tools/ci/bench_diff.ml for the comparison rules). Latency-percentile
# columns (p50/p99/p99.9) are gated separately at
# DK_BENCH_PCTL_MAX_RATIO — the SLO gate for the E15 scenario harness
# and every other experiment that reports tails.
#
# The simulation is deterministic, so an unchanged tree matches the
# baselines exactly. After an intentional cost-model or datapath
# change, regenerate with:
#
#   cd tools/ci/baselines && ../../../_build/default/bench/main.exe \
#       e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16
#
# and explain the shift in the commit message.

set -eu

cd "$(dirname "$0")/../.."

dune build bench/main.exe tools/ci/bench_diff.exe

fresh="$(mktemp -d)"
trap 'rm -rf "$fresh"' EXIT INT TERM

root="$(pwd)"
(cd "$fresh" && "$root/_build/default/bench/main.exe" \
    e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 >/dev/null)

exec "$root/_build/default/tools/ci/bench_diff.exe" \
    tools/ci/baselines "$fresh" "${DK_BENCH_MAX_RATIO:-1.25}" \
    "${DK_BENCH_PCTL_MAX_RATIO:-1.25}"
