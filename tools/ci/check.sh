#!/bin/sh
# Canonical tier-1 gate. Everything a change must pass before it lands.
#
# Usage: tools/ci/check.sh [stage]
#
#   build     dune build — the whole tree compiles (lib, bench,
#             examples, tools)
#   test      dune runtest — unit/property/integration suites, plus
#             @lint -> @verify -> @shard -> @hot (dk-lint token rules,
#             dk-verify typestate/dataflow analysis, dk-shard
#             shard-safety/determinism analysis, dk-hot hot-path cost
#             analysis; all fail on stale allowlist entries) and the
#             bench smoke run
#   sanitize  DK_SANITIZE=1 dune build @sanitize — exactly the suites
#             that read DK_SANITIZE (canaries, poison-on-free,
#             UAF/double-free detection, leak sweeps, token audit);
#             suites that never consult the sanitizer are not re-run
#   shard     dune build @shard — the dk-shard interprocedural
#             shard-safety & determinism analysis over lib/ on its own
#             (it also runs as part of 'test' via the @verify alias);
#             the multi-shard datapath is gated on this staying clean
#   hot       dune build @hot — the dk-hot interprocedural hot-path
#             cost analysis (per-op allocation, complexity, poly
#             compare/hash) over lib/ on its own (it also runs as
#             part of 'test' via the @shard alias); the ~1000-cycle
#             datapath budget is gated on this staying clean
#   fault     dune build @fault — the fault-injection scenario suite,
#             normal then sanitized; export DK_FAULT_CI=1 to widen the
#             every-plan matrix to multiple seeds (the CI matrix job
#             does)
#   scenario  dune build @scenario — the E15 open-loop scenario
#             harness at smoke scale (10^4 connections, seconds of
#             host time): determinism, open-loop invariant, overload
#             shedding/bounded-memory checks, plus one `demi scenario
#             --all --smoke` sweep through the CLI
#   offload   dune build @offload — the deep-NIC-offload suite (device
#             pipeline/table units and properties, device==CPU-fallback
#             equality, cross-traffic isolation, no-stale-reads under
#             fault plans), normal then DK_SANITIZE=1
#   bench     tools/ci/bench_diff.sh — regenerate the E1-E16 bench
#             tables and fail on >25% regression against the committed
#             baselines (virtual-time columns at DK_BENCH_MAX_RATIO,
#             latency percentiles at DK_BENCH_PCTL_MAX_RATIO)
#   all       build + test + shard + hot + scenario + offload +
#             sanitize, plus fault when DK_FAULT_CI is set
#
# Run from anywhere; exits nonzero on the first failure.

set -eu

cd "$(dirname "$0")/../.."

stage="${1:-all}"

run_build() {
  echo "== [build] dune build"
  dune build
}

run_test() {
  echo "== [test] dune runtest (includes @lint and @verify)"
  dune runtest
}

run_sanitize() {
  echo "== [sanitize] DK_SANITIZE=1 dune build @sanitize"
  DK_SANITIZE=1 dune build @sanitize --force
}

run_shard() {
  echo "== [shard] dune build @shard"
  dune build @shard --force
}

run_hot() {
  echo "== [hot] dune build @hot"
  dune build @hot --force
}

run_fault() {
  echo "== [fault] dune build @fault (DK_FAULT_CI=${DK_FAULT_CI:-0})"
  dune build @fault --force
}

run_scenario() {
  echo "== [scenario] dune build @scenario"
  dune build @scenario --force
}

run_offload() {
  echo "== [offload] dune build @offload"
  dune build @offload --force
}

run_bench() {
  echo "== [bench] tools/ci/bench_diff.sh"
  tools/ci/bench_diff.sh
}

case "$stage" in
  build)    run_build ;;
  test)     run_test ;;
  sanitize) run_sanitize ;;
  shard)    run_shard ;;
  hot)      run_hot ;;
  fault)    run_fault ;;
  scenario) run_scenario ;;
  offload)  run_offload ;;
  bench)    run_bench ;;
  all)
    run_build
    run_test
    run_shard
    run_hot
    run_scenario
    run_offload
    run_sanitize
    if [ "${DK_FAULT_CI:-}" = "1" ]; then
      run_fault
    fi
    ;;
  *)
    echo "usage: $0 [build|test|sanitize|shard|hot|fault|scenario|offload|bench|all]" >&2
    exit 2
    ;;
esac

echo "== check.sh: stage '$stage' passed"
