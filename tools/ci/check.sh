#!/bin/sh
# Canonical tier-1 gate. Everything a change must pass before it lands:
#
#   1. dune build            — the whole tree compiles (lib, bench,
#                              examples, tools)
#   2. dune runtest          — unit/property/integration suites, plus
#                              @lint -> @verify (dk-lint token rules and
#                              dk-verify typestate/dataflow analysis;
#                              both fail on stale allowlist entries) and
#                              the bench smoke run
#   3. DK_SANITIZE=1 dune runtest
#                            — the same suites under sanitizer mode
#                              (canaries, poison-on-free, UAF/double-free
#                              detection, leak sweeps, token audit)
#
# Run from anywhere; exits nonzero on the first failure.

set -eu

cd "$(dirname "$0")/../.."

echo "== [1/3] dune build"
dune build

echo "== [2/3] dune runtest (includes @lint and @verify)"
dune runtest

echo "== [3/3] DK_SANITIZE=1 dune runtest"
DK_SANITIZE=1 dune runtest --force

echo "== tier-1 gate passed"
