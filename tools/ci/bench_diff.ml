(* bench_diff — gate on virtual-time regressions in the bench tables.

   Usage: bench_diff.exe BASELINE_DIR FRESH_DIR [MAX_RATIO] [PCTL_RATIO]

   Loads every BENCH_e*.json in BASELINE_DIR, finds the same file in
   FRESH_DIR, and compares the headline virtual-time metrics: every
   numeric cell in a column whose header names nanoseconds ("p50(ns)",
   "total ns", "ns/buffer", ...). A fresh value more than MAX_RATIO
   times the baseline (default 1.25, i.e. a >25% regression) fails the
   run; so does a missing file, table, column or row — baselines are
   regenerated deliberately, never drifted past.

   Latency-percentile columns — headers of the form p<digits>, e.g.
   "p50(ns)", "p99(ns)", "p99.9(ns)" — are the SLO gate and take the
   separate PCTL_RATIO bound (same 1.25 default). Tail percentiles
   amplify queueing shifts that leave sums untouched, so CI can pin
   them tighter (or looser, for an intentionally tail-heavy change)
   without moving the virtual-time bound, via DK_BENCH_PCTL_MAX_RATIO
   in bench_diff.sh.

   The simulation is deterministic, so on an unchanged tree fresh ==
   baseline exactly; the 25% headroom is for intentional cost-model or
   datapath changes, which should land with regenerated baselines and
   an explanation. BENCH_micro.json is wall-clock and never compared.

   No JSON library in the switch: the minimal reader below mirrors the
   one in test/test_obs.ml. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let g = next () in
    if g <> c then raise (Bad (Printf.sprintf "expected %c, got %c" c g))
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match next () with
          | ('"' | '\\' | '/') as c ->
              Buffer.add_char b c;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'u' ->
              pos := !pos + 4;
              Buffer.add_char b '?';
              go ()
          | c -> raise (Bad (Printf.sprintf "escape %c" c)))
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      incr pos
    done;
    if !pos = start then raise (Bad "number");
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "object %c" c))
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "array %c" c))
          in
          elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> raise (Bad "eof")
  in
  let v = value () in
  skip_ws ();
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ---- headline-metric extraction ---- *)

(* A column is virtual-time iff its header contains "ns" as a whole
   word ("p50(ns)", "total ns", "ns/buffer", "cpu ns/msg") — substring
   matching would also catch "inspections". *)
let is_ns_header h =
  let len = String.length h in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let rec go i =
    if i + 2 > len then false
    else if
      h.[i] = 'n'
      && h.[i + 1] = 's'
      && (i = 0 || not (is_word h.[i - 1]))
      && (i + 2 = len || not (is_word h.[i + 2]))
    then true
    else go (i + 1)
  in
  go 0

(* A column is a latency percentile iff its header is "p" followed by a
   digit ("p50(ns)", "p99.9(ns)") — the SLO columns every experiment
   emits through Report.table. *)
let is_pctl_header h =
  String.length h >= 2 && h.[0] = 'p' && h.[1] >= '0' && h.[1] <= '9'

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let as_arr = function Arr l -> l | _ -> raise (Bad "expected array")
let as_str = function Str s -> s | _ -> raise (Bad "expected string")

(* [(metric key, (value, is_percentile))] for every ns-column cell of
   every table. The key embeds the table index, column header and the
   row's first cell (its label), so renumbered rows do not silently
   compare the wrong cells. *)
let headline_metrics path =
  let doc = parse_json (read_file path) in
  let tables = match member "tables" doc with Some t -> as_arr t | None -> [] in
  List.concat
    (List.mapi
       (fun ti table ->
         let head =
           match member "head" table with
           | Some h -> List.map as_str (as_arr h)
           | None -> []
         in
         let rows =
           match member "rows" table with Some r -> as_arr r | None -> []
         in
         List.concat
           (List.map
              (fun row ->
                let cells = List.map as_str (as_arr row) in
                let label = match cells with l :: _ -> l | [] -> "?" in
                List.concat
                  (List.mapi
                     (fun ci cell ->
                       match List.nth_opt head ci with
                       | Some h when is_ns_header h -> (
                           match float_of_string_opt cell with
                           | Some v ->
                               [
                                 ( Printf.sprintf "t%d[%s].%s" ti label h,
                                   (v, is_pctl_header h) );
                               ]
                           | None -> [])
                       | _ -> [])
                     cells))
              rows))
       tables)

let () =
  let baseline_dir, fresh_dir, max_ratio, pctl_ratio =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 1.25, 1.25)
    | [ _; b; f; r ] -> (b, f, float_of_string r, float_of_string r)
    | [ _; b; f; r; p ] -> (b, f, float_of_string r, float_of_string p)
    | _ ->
        prerr_endline
          "usage: bench_diff.exe BASELINE_DIR FRESH_DIR [MAX_RATIO] \
           [PCTL_RATIO]";
        exit 2
  in
  let baselines =
    Sys.readdir baseline_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 7
           && String.sub f 0 7 = "BENCH_e"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if baselines = [] then (
    Printf.eprintf "bench_diff: no BENCH_e*.json baselines in %s\n" baseline_dir;
    exit 2);
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun file ->
      let bpath = Filename.concat baseline_dir file in
      let fpath = Filename.concat fresh_dir file in
      if not (Sys.file_exists fpath) then (
        Printf.eprintf "FAIL %s: fresh run produced no %s\n" file file;
        incr failures)
      else
        let base = headline_metrics bpath in
        let fresh = headline_metrics fpath in
        List.iter
          (fun (key, (bv, pctl)) ->
            match List.assoc_opt key fresh with
            | None ->
                Printf.eprintf "FAIL %s %s: metric missing from fresh run\n"
                  file key;
                incr failures
            | Some (fv, _) ->
                incr compared;
                let allowed = if pctl then pctl_ratio else max_ratio in
                if bv > 0. && fv > bv *. allowed then (
                  Printf.eprintf
                    "FAIL %s %s%s: %.0fns -> %.0fns (%.2fx > %.2fx allowed)\n"
                    file key
                    (if pctl then " [pctl]" else "")
                    bv fv (fv /. bv) allowed;
                  incr failures))
          base)
    baselines;
  Printf.printf "bench_diff: %d headline metrics compared across %d files, %d regression(s)\n"
    !compared (List.length baselines) !failures;
  if !failures > 0 then exit 1
