(* Kernel-bypass storage queues (§5.3): a log-structured record store
   directly on an NVMe-class device — no syscalls, no VFS, no page
   cache — with crash recovery by scanning the self-describing layout.

   Run with:  dune exec examples/storage_log.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Sga = Dk_mem.Sga

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let () =
  let engine = Engine.create () in
  let cost = Dk_sim.Cost.default in
  let block = Dk_device.Block.create ~engine ~cost () in

  (* First life: create a log and append some records. *)
  let demi = Demi.create ~engine ~cost ~block () in
  let qd = Result.get_ok (Demi.fcreate demi "orders.log") in
  let t0 = Engine.now engine in
  List.iter
    (fun r ->
      match Demi.blocking_push demi qd r with
      | Types.Pushed -> ()
      | res -> Format.kasprintf failwith "append failed: %a" Types.pp_op_result res)
    [
      Sga.of_strings [ "order"; "1"; "widgets x3" ];
      Sga.of_strings [ "order"; "2"; "sprockets x1" ];
      Sga.of_strings [ "order"; "3"; "gears x7" ];
    ];
  Format.printf "3 records durable in %Ld ns (doorbell + flash, no syscalls)@."
    (Int64.sub (Engine.now engine) t0);

  (* "Crash": drop the runtime. The device retains the blocks. *)
  must (Demi.close demi qd);

  (* Second life: recover by scanning the log's CRC-sealed records.
     The file catalog is in-memory in this reproduction (a real system
     would keep it in a superblock), so the fresh runtime re-registers
     the path — extent allocation is deterministic, so it lands on the
     same blocks — and then fopen scans the device for the real
     contents. *)
  let demi2 = Demi.create ~engine ~cost ~block () in
  (match Demi.fcreate demi2 "orders.log" with
  | Ok _registration_qd -> ()
  | Error e -> failwith (Types.error_to_string e));
  let qd2 = Result.get_ok (Demi.fopen demi2 "orders.log") in
  print_endline "recovered; replaying:";
  let rec replay i =
    match Demi.wait_timeout demi2 (Result.get_ok (Demi.pop demi2 qd2)) ~timeout:1_000_000L with
    | Types.Popped sga ->
        Format.printf "  record %d: %S (%d segments)@." i (Sga.to_string sga)
          (Sga.segment_count sga);
        replay (i + 1)
    | _ -> Format.printf "  (end of log after %d records)@." (i - 1)
  in
  replay 1
