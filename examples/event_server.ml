(* A memcached-style server written against the libevent-flavoured
   adapter of §4.4: no explicit pops, no epoll — register callbacks per
   queue and the loop delivers whole messages with no wasted wakeups.

   Run with:  dune exec examples/event_server.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Setup = Dk_apps.Sim_setup
module Event_loop = Dk_sched.Event_loop
module Proto = Dk_apps.Proto
module Kv = Dk_apps.Kv
module Sga = Dk_mem.Sga

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let () =
  let duo = Setup.two_hosts () in
  let server =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in
  let client =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in

  (* --- server: pure callbacks --- *)
  let kv = Kv.create (Demi.manager server) in
  let loop = Event_loop.create server in
  let lqd = Result.get_ok (Demi.socket server `Tcp) in
  must (Demi.bind server lqd ~port:11211);
  must (Demi.listen server lqd);
  let served = ref 0 in
  Event_loop.on_accept loop lqd (fun conn ->
      Format.printf "server: accepted qd=%d@." conn;
      Event_loop.on_message loop conn (fun sga ->
          incr served;
          match Proto.request_of_sga sga with
          | Some req -> Event_loop.send loop conn (Kv.apply_zero_copy kv req)
          | None -> ());
      Event_loop.on_close loop conn (fun _ ->
          Format.printf "server: connection closed@."));

  (* --- client: ordinary blocking calls --- *)
  let qd = Result.get_ok (Demi.socket client `Tcp) in
  must (Demi.connect client qd ~dst:(Setup.endpoint duo.Setup.b 11211));
  let rpc req =
    ignore (Demi.blocking_push client qd (Proto.request_sga req));
    match Demi.blocking_pop client qd with
    | Types.Popped sga -> Proto.response_of_sga sga
    | _ -> None
  in
  ignore (rpc (Proto.Set ("lang", "ocaml")));
  ignore (rpc (Proto.Set ("paper", "hotos19")));
  (match rpc (Proto.Get "lang") with
  | Some (Proto.Value v) -> Format.printf "GET lang -> %S@." v
  | _ -> print_endline "GET failed");
  (match rpc (Proto.Del "lang") with
  | Some Proto.Deleted -> print_endline "DEL lang -> deleted"
  | _ -> print_endline "DEL failed");
  (match rpc (Proto.Get "lang") with
  | Some Proto.Not_found -> print_endline "GET lang -> (not found)"
  | _ -> print_endline "unexpected");
  must (Demi.close client qd);
  Format.printf "server handled %d requests via event callbacks@." !served
