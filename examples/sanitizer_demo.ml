(* Sanitizer mode, demonstrated on three seeded bugs.

   Kernel-bypass makes lifetime bugs silent: a device DMAs into freed
   memory or a queue completes a token twice and nothing faults — data
   is simply wrong later. With sanitize on, the same bugs raise
   [Dk_check.Violation] at the exact operation that went wrong.

   Run with:  dune exec examples/sanitizer_demo.exe
   (The demo forces sanitize on; DK_SANITIZE=1 does the same for any
   program without a code change.) *)

module Manager = Dk_mem.Manager
module Buffer = Dk_mem.Buffer
module Dk_check = Dk_mem.Dk_check

let show name f =
  match f () with
  | () -> Printf.printf "%-16s not detected (?)\n" name
  | exception Dk_check.Violation (kind, detail) ->
      Printf.printf "%-16s caught %s:\n  %s\n" name
        (Dk_check.kind_name kind) detail

let () =
  let mgr = Manager.create ~sanitize:true () in

  show "use-after-free" (fun () ->
      let b = Manager.alloc_exn mgr 64 in
      Buffer.free b;
      (* the device may already own these bytes *)
      ignore (Buffer.get b 0));

  show "double-free" (fun () ->
      let b = Manager.alloc_exn mgr 64 in
      Buffer.free b;
      Buffer.free b);

  show "canary-smash" (fun () ->
      let b = Manager.alloc_exn mgr 32 in
      (* a mis-sized DMA overruns the requested length *)
      Bytes.set (Buffer.store b) (Buffer.off b + Buffer.length b) 'X';
      Buffer.free b);

  (* leak sweep: one allocation intentionally never freed *)
  ignore (Manager.alloc_exn mgr 128);
  let leaks, reports = Dk_check.capture (fun () -> Manager.check_leaks mgr) in
  Printf.printf "shutdown sweep   %d leak(s):\n" (List.length leaks);
  List.iter (fun (_, detail) -> Printf.printf "  %s\n" detail) reports
