(* Key-based steering (§4.3): partition one request stream across
   per-core worker queues by key hash, so each worker owns a key range
   ("improve cache utilization by steering I/O to CPUs based on
   application-specific parameters (e.g., keys in a key-value store)").

   Each worker drains its own queue with fibers; equal keys always land
   on the same worker, so no cross-worker synchronisation is needed.

   Run with:  dune exec examples/steering.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Fiber = Dk_sched.Fiber
module Sga = Dk_mem.Sga
module Workload = Dk_apps.Workload

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let () =
  let engine = Dk_sim.Engine.create () in
  let demi = Demi.create ~engine ~cost:Dk_sim.Cost.default () in
  let requests = Demi.queue demi in
  let ways = 4 in
  let worker_queues =
    Result.get_ok (Demi.steer demi requests ~ways ~hash_off:0 ~hash_len:12)
  in

  (* one fiber per "core", each owning its partition *)
  let sched = Fiber.create demi in
  let counts = Array.make ways 0 in
  let keys_seen = Array.make ways [] in
  List.iteri
    (fun w qd ->
      Fiber.spawn sched (fun () ->
          let rec serve () =
            match Fiber.await_pop sched qd with
            | Types.Popped sga ->
                counts.(w) <- counts.(w) + 1;
                let key = Sga.sub_string sga 0 (min 12 (Sga.length sga)) in
                if not (List.mem key keys_seen.(w)) then
                  keys_seen.(w) <- key :: keys_seen.(w);
                serve ()
            | _ -> ()
          in
          serve ()))
    worker_queues;

  (* a producer fiber feeding 400 zipf-keyed requests *)
  Fiber.spawn sched (fun () ->
      let wl = Workload.create (Workload.Zipf { n = 40; theta = 0.9 }) in
      for _ = 1 to 400 do
        let key = Workload.key_name (Workload.next_key wl) in
        ignore (Fiber.await_push sched requests (Sga.of_string (key ^ ":payload")))
      done;
      (* producers done: close the source so workers drain and exit *)
      must (Demi.close demi requests));
  Fiber.run sched;

  Format.printf "requests per worker:@.";
  Array.iteri
    (fun w c ->
      Format.printf "  worker %d: %4d requests, %2d distinct keys@." w c
        (List.length keys_seen.(w)))
    counts;
  (* disjointness: no key appears on two workers *)
  let all = Array.to_list keys_seen |> List.concat in
  let distinct = List.sort_uniq compare all in
  Format.printf "key partitions disjoint: %b (total %d distinct keys)@."
    (List.length all = List.length distinct)
    (List.length distinct)
