(* RDMA ping-pong (Table 1, middle column).

   The RDMA device gives reliable delivery but demands registered
   memory and posted receive buffers; the Demikernel libOS supplies
   both invisibly: buffers come from pre-registered regions (§4.5) and
   the queue keeps the receive ring replenished with credit-based flow
   control. The application below never registers memory, never posts
   a receive, and never sees an RNR.

   Run with:  dune exec examples/rdma_pingpong.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Engine = Dk_sim.Engine
module Rdma = Dk_device.Rdma
module Sga = Dk_mem.Sga

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let () =
  let engine = Engine.create () in
  let cost = Dk_sim.Cost.default in
  let nic_a = Rdma.create ~engine ~cost () in
  let nic_b = Rdma.create ~engine ~cost () in
  let da = Demi.create ~engine ~cost ~rdma:nic_a () in
  let db = Demi.create ~engine ~cost ~rdma:nic_b () in

  (* Control path: pair the queue pairs (rdmacm-style, out of band). *)
  let qp_a = Rdma.create_qp nic_a and qp_b = Rdma.create_qp nic_b in
  Rdma.connect qp_a qp_b;
  let qa = Result.get_ok (Demi.rdma_endpoint da ~depth:16 qp_a) in
  let qb = Result.get_ok (Demi.rdma_endpoint db ~depth:16 qp_b) in

  (* B: pong everything back. *)
  let rec pong () =
    match Demi.pop db qb with
    | Error _ -> ()
    | Ok tok ->
        Demi.watch db tok (function
          | Types.Popped sga ->
              (match Demi.push db qb sga with
              | Ok t -> Demi.watch db t (fun _ -> ())
              | Error _ -> ());
              pong ()
          | _ -> ())
  in
  pong ();

  (* A: ping N times, measuring RTT. *)
  let hist = Dk_sim.Histogram.create () in
  let rounds = 1000 in
  for i = 1 to rounds do
    let sga = Result.get_ok (Demi.sga_alloc da (Printf.sprintf "ping %04d" i)) in
    let t0 = Engine.now engine in
    ignore (Demi.blocking_push da qa sga);
    (match Demi.blocking_pop da qa with
    | Types.Popped reply ->
        Dk_sim.Histogram.record hist (Int64.sub (Engine.now engine) t0);
        Demi.sga_free da reply
    | r -> Format.kasprintf failwith "pong failed: %a" Types.pp_op_result r);
    Demi.sga_free da sga
  done;
  Format.printf "%d round trips: %a@." rounds Dk_sim.Histogram.pp_summary hist;
  let st = Rdma.stats nic_a in
  Format.printf
    "device: %d sends, %d RNR events, %d registration failures — the libOS's@."
    st.Rdma.sends st.Rdma.rnr_events st.Rdma.registration_failures;
  Format.printf
    "buffer management and flow control kept both failure counters at zero.@.";
  must (Demi.close da qa);
  must (Demi.close db qb)
