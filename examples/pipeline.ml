(* Queue composition and device offload (§4.2–4.3).

   Builds the paper's "complex I/O processing pipeline": a UDP queue on
   a programmable NIC, filtered by a verified program (offloaded to the
   device — dropped datagrams never touch the CPU), then mapped and
   sorted on the host.

   Run with:  dune exec examples/pipeline.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Setup = Dk_apps.Sim_setup
module Sga = Dk_mem.Sga
module Prog = Dk_device.Prog

let must = function
  | Ok v -> v
  | Error e -> failwith (Types.error_to_string e)

let () =
  (* programmable NICs: Table 1's right column *)
  let duo = Setup.two_hosts ~programmable:true () in
  let sender =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let receiver =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in

  (* Receiver: udp queue |> filter (on device!) |> map |> sort. *)
  let udp = Result.get_ok (Demi.socket receiver `Udp) in
  must (Demi.bind receiver udp ~port:9000);
  let filtered =
    Result.get_ok (Demi.filter receiver udp (Prog.Prefix "EVT:"))
  in
  Format.printf "filter offloaded to NIC: %b@."
    (Demi.filter_offloaded receiver filtered);
  let mapped =
    Result.get_ok (Demi.map receiver filtered (Prog.Chain [ Prog.Prepend "[" ; Prog.Append "]" ]))
  in
  (* highest priority = shortest message *)
  let sorted =
    Result.get_ok
      (Demi.sort receiver mapped (fun a b -> Sga.length a < Sga.length b))
  in

  (* Sender: a burst of matching and non-matching datagrams. *)
  let out = Result.get_ok (Demi.socket sender `Udp) in
  must (Demi.connect sender out ~dst:(Setup.endpoint duo.Setup.b 9000));
  List.iter
    (fun msg -> ignore (Demi.blocking_push sender out (Sga.of_string msg)))
    [
      "EVT:medium event";
      "noise that the NIC drops";
      "EVT:tiny";
      "more noise";
      "EVT:quite a long event indeed";
    ];

  (* Let the burst arrive, then drain: 3 events survive the filter and
     pop in priority (size) order. *)
  Dk_sim.Engine.run_for duo.Setup.engine 1_000_000L;
  for i = 1 to 3 do
    match Demi.blocking_pop receiver sorted with
    | Types.Popped sga -> Format.printf "pop %d: %S@." i (Sga.to_string sga)
    | r -> Format.printf "pop %d failed: %a@." i Types.pp_op_result r
  done;
  let stats = Dk_device.Nic.stats duo.Setup.b.Setup.nic in
  Format.printf "NIC dropped %d frames on-device (zero CPU cost)@."
    stats.Dk_device.Nic.rx_filtered;
  must (Demi.close sender out);
  must (Demi.close receiver sorted)
