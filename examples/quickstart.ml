(* Quickstart: the Demikernel interface in ~40 lines.

   Two simulated hosts on a switched fabric, each with a kernel-bypass
   NIC and a user-level stack. The server echoes; the client uses the
   Figure-3 calls: socket / bind / listen / accept (control path),
   push / pop / wait (data path).

   Run with:  dune exec examples/quickstart.exe *)

module Demi = Demikernel.Demi
module Types = Demikernel.Types
module Setup = Dk_apps.Sim_setup
module Sga = Dk_mem.Sga

let () =
  (* Control path: build the simulated datacenter. *)
  let duo = Setup.two_hosts () in
  let client =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.a ()
  in
  let server =
    Setup.demi_of_host ~engine:duo.Setup.engine ~cost:duo.Setup.cost duo.Setup.b ()
  in

  (* Server: listen and echo every message back. *)
  (match Dk_apps.Echo.start_demi_server ~demi:server ~port:7 with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));

  (* Client: connect, push a scatter-gather message, pop the echo. *)
  let qd = Result.get_ok (Demi.socket client `Tcp) in
  (match Demi.connect client qd ~dst:(Setup.endpoint duo.Setup.b 7) with
  | Ok () -> print_endline "connected (control path, through the handshake)"
  | Error e -> failwith (Types.error_to_string e));

  let message = Sga.of_strings [ "hello, "; "demikernel"; "!" ] in
  let t0 = Dk_sim.Engine.now duo.Setup.engine in
  (match Demi.blocking_push client qd message with
  | Types.Pushed -> ()
  | r -> Format.kasprintf failwith "push failed: %a" Types.pp_op_result r);
  (match Demi.blocking_pop client qd with
  | Types.Popped reply ->
      let rtt = Int64.sub (Dk_sim.Engine.now duo.Setup.engine) t0 in
      Format.printf "echoed %d bytes in %d segments — RTT %Ld ns@."
        (Sga.length reply) (Sga.segment_count reply) rtt;
      Format.printf "payload: %S@." (Sga.to_string reply)
  | r -> Format.kasprintf failwith "pop failed: %a" Types.pp_op_result r);
  (match Demi.close client qd with
  | Ok () -> ()
  | Error e -> failwith (Types.error_to_string e));
  print_endline "done."
